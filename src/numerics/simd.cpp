#include "numerics/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace lrd::numerics::simd {

namespace {

/// Plain-formula complex multiply. std::complex's operator* routes
/// through __muldc3 for NaN recovery — a function call per butterfly;
/// the butterflies validate finiteness upstream, so the four-multiply
/// form is both faster and exactly what the vector kernels compute.
inline std::complex<double> cmul1(std::complex<double> a, std::complex<double> b) noexcept {
  return {a.real() * b.real() - a.imag() * b.imag(),
          a.real() * b.imag() + a.imag() * b.real()};
}

template <bool Inverse>
void radix4_scalar_impl(std::complex<double>* d, std::size_t n, std::size_t len,
                        const std::complex<double>* wa, const std::complex<double>* wb,
                        const std::complex<double>* wc) noexcept {
  const std::size_t q = len / 2;
  const std::size_t block = 2 * len;
  for (std::size_t j = 0; j < n; j += block) {
    std::complex<double>* p0 = d + j;
    std::complex<double>* p1 = p0 + q;
    std::complex<double>* p2 = p0 + len;
    std::complex<double>* p3 = p2 + q;
    for (std::size_t k = 0; k < q; ++k) {
      const std::complex<double> wak = Inverse ? std::conj(wa[k]) : wa[k];
      const std::complex<double> wbk = Inverse ? std::conj(wb[k]) : wb[k];
      const std::complex<double> wck = Inverse ? std::conj(wc[k]) : wc[k];
      const std::complex<double> x0 = p0[k];
      const std::complex<double> x1 = p1[k];
      const std::complex<double> x2 = p2[k];
      const std::complex<double> x3 = p3[k];
      const std::complex<double> t1 = cmul1(x1, wak);
      const std::complex<double> a0 = x0 + t1;
      const std::complex<double> a1 = x0 - t1;
      const std::complex<double> t3 = cmul1(x3, wak);
      const std::complex<double> a2 = x2 + t3;
      const std::complex<double> a3 = x2 - t3;
      const std::complex<double> u2 = cmul1(a2, wbk);
      const std::complex<double> u3 = cmul1(a3, wck);
      p0[k] = a0 + u2;
      p2[k] = a0 - u2;
      p1[k] = a1 + u3;
      p3[k] = a1 - u3;
    }
  }
}

const FftKernels kScalarKernels{Isa::kScalar, "scalar", &detail::radix4_pass_scalar,
                                &detail::cmul_scalar};

/// Best table this CPU supports, honoring the LRDQ_SIMD override.
const FftKernels* detect() noexcept {
  const FftKernels* avx2 = nullptr;
  const FftKernels* neon = detail::neon_fft_kernels();
#if LRD_SIMD && (defined(__x86_64__) || defined(_M_X64))
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    avx2 = detail::avx2_fft_kernels();
#endif
  if (const char* env = std::getenv("LRDQ_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return &kScalarKernels;
    if (std::strcmp(env, "avx2") == 0 && avx2 != nullptr) return avx2;
    if (std::strcmp(env, "neon") == 0 && neon != nullptr) return neon;
    // Unknown or unavailable request: fall through to auto-detection.
  }
  if (avx2 != nullptr) return avx2;
  if (neon != nullptr) return neon;
  return &kScalarKernels;
}

std::atomic<const FftKernels*> g_active{nullptr};

}  // namespace

namespace detail {

void radix4_pass_scalar(std::complex<double>* data, std::size_t n, std::size_t len,
                        const std::complex<double>* wa, const std::complex<double>* wb,
                        const std::complex<double>* wc, bool inverse) {
  if (inverse)
    radix4_scalar_impl<true>(data, n, len, wa, wb, wc);
  else
    radix4_scalar_impl<false>(data, n, len, wa, wb, wc);
}

void cmul_scalar(std::complex<double>* a, const std::complex<double>* b, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) a[i] = cmul1(a[i], b[i]);
}

}  // namespace detail

const FftKernels& active_fft_kernels() noexcept {
  const FftKernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = detect();
    // Another thread may have published concurrently; detection is
    // deterministic, so whichever write wins names the same table.
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

const char* active_isa_name() noexcept { return active_fft_kernels().name; }

bool set_active_kernels_for_testing(Isa isa) noexcept {
  const FftKernels* k = nullptr;
  switch (isa) {
    case Isa::kScalar:
      k = &kScalarKernels;
      break;
    case Isa::kAvx2:
#if LRD_SIMD && (defined(__x86_64__) || defined(_M_X64))
      if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        k = detail::avx2_fft_kernels();
#endif
      break;
    case Isa::kNeon:
      k = detail::neon_fft_kernels();
      break;
  }
  if (k == nullptr) return false;
  g_active.store(k, std::memory_order_release);
  return true;
}

void reset_active_kernels_for_testing() noexcept {
  g_active.store(nullptr, std::memory_order_release);
}

}  // namespace lrd::numerics::simd
