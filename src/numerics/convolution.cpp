#include "numerics/convolution.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/status.hpp"
#include "numerics/fft.hpp"
#include "numerics/parallel.hpp"
#include "numerics/simd.hpp"
#include "numerics/special_functions.hpp"

namespace lrd::numerics {

namespace {

void require_finite(const std::vector<double>& x, const char* where) {
  if (!all_finite(x))
    throw_error(make_diagnostics(ErrorCategory::kNumericalGuard, "numerics.convolution",
                                 "input sequences are finite",
                                 std::string(where) + ": non-finite (NaN/Inf) entry in input"));
}

/// FFT size for a linear convolution of output length `out_len`
/// (RealFft needs at least 2 points).
std::size_t conv_fft_size(std::size_t out_len) {
  return std::max<std::size_t>(2, next_pow2(out_len));
}

/// z^e by binary exponentiation (exact repeated multiplication, no
/// exp/log branch cuts).
std::complex<double> pow_uint(std::complex<double> z, std::size_t e) {
  std::complex<double> r{1.0, 0.0};
  while (e != 0) {
    if (e & 1) r *= z;
    z *= z;
    e >>= 1;
  }
  return r;
}

}  // namespace

std::vector<double> convolve_direct(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("convolve_direct: empty input");
  require_finite(a, "convolve_direct");
  require_finite(b, "convolve_direct");
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += ai * b[j];
  }
  return out;
}

std::vector<double> convolve_fft(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("convolve_fft: empty input");
  require_finite(a, "convolve_fft");
  require_finite(b, "convolve_fft");
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = conv_fft_size(out_len);
  const RealFft rfft(n);
  std::vector<std::complex<double>> fa(rfft.spectrum_size());
  std::vector<std::complex<double>> fb(rfft.spectrum_size());
  rfft.forward(a.data(), a.size(), fa.data());
  rfft.forward(b.data(), b.size(), fb.data());
  for (std::size_t k = 0; k < fa.size(); ++k) fa[k] *= fb[k];
  std::vector<double> out(n);
  rfft.inverse(fa.data(), out.data());
  out.resize(out_len);
  return out;
}

std::vector<double> convolve(const std::vector<double>& a, const std::vector<double>& b) {
  // Crossover re-tuned for the LRD_SIMD butterfly kernels from
  // BENCH_history.jsonl: the direct path costs ~0.7 ns per a*b product
  // (micro_solver/convolve_direct/{64,256,1024}), the transform path
  // ~2.8 us at a 256-point grid (micro_solver/convolve_fft/64) — the
  // vector butterflies moved the break-even down from the scalar-era
  // 96x96 to |a|*|b| ~ 4e3. Below it the direct path's tiny constant
  // wins even against a warm plan cache and AVX2 spectra.
  if (a.size() * b.size() <= 64 * 64) return convolve_direct(a, b);
  return convolve_fft(a, b);
}

std::vector<double> self_convolve(const std::vector<double>& a, std::size_t n) {
  if (n == 0) throw std::invalid_argument("self_convolve: n must be >= 1");
  if (n == 1) return a;
  if (a.empty()) throw std::invalid_argument("self_convolve: empty input");
  require_finite(a, "self_convolve");
  const std::size_t out_len = n * (a.size() - 1) + 1;
  // Tiny outputs: repeated direct convolution is exact (integer
  // sequences stay integer) and cheaper than a transform.
  if (out_len <= 64) {
    std::vector<double> out = a;
    for (std::size_t k = 1; k < n; ++k) out = convolve_direct(out, a);
    return out;
  }
  // Spectrum powering: DFT(a^{*n}) = DFT(a)^n on a grid wide enough to
  // hold the final (not intermediate) support, so the whole job is one
  // forward transform, a pointwise power, and one inverse.
  const std::size_t nfft = conv_fft_size(out_len);
  const RealFft rfft(nfft);
  std::vector<std::complex<double>> spec(rfft.spectrum_size());
  rfft.forward(a.data(), a.size(), spec.data());
  for (auto& z : spec) z = pow_uint(z, n);
  std::vector<double> out(nfft);
  rfft.inverse(spec.data(), out.data());
  out.resize(out_len);
  return out;
}

CachedKernelConvolver::CachedKernelConvolver(std::vector<double> kernel,
                                             std::size_t max_signal_len)
    : kernel_len_(kernel.size()),
      max_signal_len_(max_signal_len),
      n_(kernel.empty() || max_signal_len == 0
             ? 2
             : conv_fft_size(kernel.size() + max_signal_len - 1)),
      rfft_(n_) {
  if (kernel.empty()) throw std::invalid_argument("CachedKernelConvolver: empty kernel");
  if (max_signal_len == 0) throw std::invalid_argument("CachedKernelConvolver: max_signal_len == 0");
  require_finite(kernel, "CachedKernelConvolver");
  kernel_mass_ = neumaier_sum(kernel);
  kernel_spectrum_.resize(rfft_.spectrum_size());
  rfft_.forward(kernel.data(), kernel.size(), kernel_spectrum_.data());
}

namespace {

/// Spectrum sizes at or above this are bin-chunked across the executor;
/// below it one dispatched cmul sweep is cheaper than any scheduling.
/// At 32k bins the multiply costs tens of microseconds — about the
/// executor's round-trip — so smaller spectra stay single-threaded.
/// Nested calls (a convolver running inside a worker task, as in the
/// fold engine's split mode) execute inline either way.
constexpr std::size_t kMtSpectrumBins = std::size_t{1} << 15;
constexpr std::size_t kMtSpectrumGrain = std::size_t{1} << 13;

}  // namespace

void CachedKernelConvolver::convolve_into(const double* signal, std::size_t len, Workspace& ws,
                                          double* out) const {
  if (signal == nullptr || len == 0 || len > max_signal_len_)
    throw std::invalid_argument("CachedKernelConvolver::convolve_into: bad signal length");
  rfft_.forward(signal, len, ws.freq.data());
  const simd::FftKernels& kernels = simd::active_fft_kernels();
  const std::size_t bins = kernel_spectrum_.size();
  if (bins >= kMtSpectrumBins) {
    std::complex<double>* freq = ws.freq.data();
    const std::complex<double>* spec = kernel_spectrum_.data();
    parallel_for_ranges(bins, kMtSpectrumGrain, [&](std::size_t begin, std::size_t end) {
      kernels.cmul(freq + begin, spec + begin, end - begin);
    });
  } else {
    kernels.cmul(ws.freq.data(), kernel_spectrum_.data(), bins);
  }
  rfft_.inverse(ws.freq.data(), ws.time.data());
  const std::size_t out_len = len + kernel_len_ - 1;
  std::copy(ws.time.begin(), ws.time.begin() + static_cast<std::ptrdiff_t>(out_len), out);
}

std::vector<double> CachedKernelConvolver::convolve(const std::vector<double>& signal) const {
  if (signal.empty() || signal.size() > max_signal_len_)
    throw std::invalid_argument("CachedKernelConvolver::convolve: bad signal length");
  Workspace ws = make_workspace();
  std::vector<double> out(signal.size() + kernel_len_ - 1);
  convolve_into(signal.data(), signal.size(), ws, out.data());
  return out;
}

DualKernelConvolver::DualKernelConvolver(std::vector<double> kernel_a,
                                         std::vector<double> kernel_b,
                                         std::size_t max_signal_len)
    : kernel_len_(kernel_a.size()),
      max_signal_len_(max_signal_len),
      n_(kernel_a.empty() || max_signal_len == 0
             ? 2
             : conv_fft_size(kernel_a.size() + max_signal_len - 1)),
      plan_(&fft_plan(n_)) {
  if (kernel_a.empty() || kernel_b.empty())
    throw std::invalid_argument("DualKernelConvolver: empty kernel");
  if (kernel_a.size() != kernel_b.size())
    throw std::invalid_argument("DualKernelConvolver: kernels must have equal length");
  if (max_signal_len == 0) throw std::invalid_argument("DualKernelConvolver: max_signal_len == 0");
  require_finite(kernel_a, "DualKernelConvolver");
  require_finite(kernel_b, "DualKernelConvolver");
  mass_a_ = neumaier_sum(kernel_a);
  mass_b_ = neumaier_sum(kernel_b);
  // Full spectra so convolve_into can index bin n - k without wrapping
  // logic; built once per convolver, so the cold complex transform is fine.
  spec_a_.assign(n_, std::complex<double>{});
  spec_b_.assign(n_, std::complex<double>{});
  for (std::size_t i = 0; i < kernel_len_; ++i) spec_a_[i] = kernel_a[i];
  for (std::size_t i = 0; i < kernel_len_; ++i) spec_b_[i] = kernel_b[i];
  plan_->forward(spec_a_.data());
  plan_->forward(spec_b_.data());
}

void DualKernelConvolver::convolve_into(const double* a, const double* b, std::size_t len,
                                        Workspace& ws, double* out_a, double* out_b) const {
  if (a == nullptr || b == nullptr || len == 0 || len > max_signal_len_)
    throw std::invalid_argument("DualKernelConvolver::convolve_into: bad signal length");
  std::complex<double>* x = ws.freq.data();
  for (std::size_t j = 0; j < len; ++j) x[j] = {a[j], b[j]};
  for (std::size_t j = len; j < n_; ++j) x[j] = {0.0, 0.0};
  plan_->forward(x);
  // Split X into the spectra A, B of the two real signals (conjugate
  // symmetry), multiply by the kernel spectra, and repack Y = A Ka + i B Kb
  // whose inverse carries a * ka in its real part and b * kb in its
  // imaginary part.
  const std::size_t half = n_ / 2;
  {
    const double a0 = x[0].real();
    const double b0 = x[0].imag();
    const std::complex<double> ya = a0 * spec_a_[0];
    const std::complex<double> yb = b0 * spec_b_[0];
    x[0] = {ya.real() - yb.imag(), ya.imag() + yb.real()};
    const double ah = x[half].real();
    const double bh = x[half].imag();
    const std::complex<double> yah = ah * spec_a_[half];
    const std::complex<double> ybh = bh * spec_b_[half];
    x[half] = {yah.real() - ybh.imag(), yah.imag() + ybh.real()};
  }
  for (std::size_t k = 1; k < half; ++k) {
    const std::size_t m = n_ - k;
    const std::complex<double> xk = x[k];
    const std::complex<double> xm = std::conj(x[m]);
    const std::complex<double> ak = 0.5 * (xk + xm);
    const std::complex<double> bk = std::complex<double>{0.0, -0.5} * (xk - xm);
    const std::complex<double> yak = ak * spec_a_[k];
    const std::complex<double> ybk = bk * spec_b_[k];
    x[k] = {yak.real() - ybk.imag(), yak.imag() + ybk.real()};
    const std::complex<double> yam = std::conj(ak) * spec_a_[m];
    const std::complex<double> ybm = std::conj(bk) * spec_b_[m];
    x[m] = {yam.real() - ybm.imag(), yam.imag() + ybm.real()};
  }
  plan_->inverse(x);
  const double inv_n = 1.0 / static_cast<double>(n_);
  const std::size_t out_len = len + kernel_len_ - 1;
  for (std::size_t i = 0; i < out_len; ++i) {
    out_a[i] = x[i].real() * inv_n;
    out_b[i] = x[i].imag() * inv_n;
  }
}

}  // namespace lrd::numerics
