#include "numerics/convolution.hpp"

#include <stdexcept>

#include "core/status.hpp"
#include "numerics/fft.hpp"
#include "numerics/special_functions.hpp"

namespace lrd::numerics {

namespace {

void require_finite(const std::vector<double>& x, const char* where) {
  if (!all_finite(x))
    throw_error(make_diagnostics(ErrorCategory::kNumericalGuard, "numerics.convolution",
                                 "input sequences are finite",
                                 std::string(where) + ": non-finite (NaN/Inf) entry in input"));
}

}  // namespace

std::vector<double> convolve_direct(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("convolve_direct: empty input");
  require_finite(a, "convolve_direct");
  require_finite(b, "convolve_direct");
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += ai * b[j];
  }
  return out;
}

std::vector<double> convolve_fft(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("convolve_fft: empty input");
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  auto fa = fft_real(a, n);
  auto fb = fft_real(b, n);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  auto res = ifft(std::move(fa));
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = res[i].real();
  return out;
}

std::vector<double> convolve(const std::vector<double>& a, const std::vector<double>& b) {
  // Crossover chosen empirically; the direct path wins for tiny kernels.
  if (a.size() * b.size() <= 64 * 64) return convolve_direct(a, b);
  return convolve_fft(a, b);
}

std::vector<double> self_convolve(const std::vector<double>& a, std::size_t n) {
  if (n == 0) throw std::invalid_argument("self_convolve: n must be >= 1");
  std::vector<double> out = a;
  for (std::size_t k = 1; k < n; ++k) out = convolve(out, a);
  return out;
}

CachedKernelConvolver::CachedKernelConvolver(std::vector<double> kernel,
                                             std::size_t max_signal_len)
    : kernel_len_(kernel.size()), max_signal_len_(max_signal_len) {
  if (kernel.empty()) throw std::invalid_argument("CachedKernelConvolver: empty kernel");
  if (max_signal_len == 0) throw std::invalid_argument("CachedKernelConvolver: max_signal_len == 0");
  require_finite(kernel, "CachedKernelConvolver");
  kernel_mass_ = neumaier_sum(kernel);
  n_ = next_pow2(kernel_len_ + max_signal_len_ - 1);
  kernel_spectrum_ = fft_real(kernel, n_);
}

std::vector<double> CachedKernelConvolver::convolve(const std::vector<double>& signal) const {
  if (signal.empty() || signal.size() > max_signal_len_)
    throw std::invalid_argument("CachedKernelConvolver::convolve: bad signal length");
  auto fs = fft_real(signal, n_);
  for (std::size_t i = 0; i < n_; ++i) fs[i] *= kernel_spectrum_[i];
  auto res = ifft(std::move(fs));
  const std::size_t out_len = signal.size() + kernel_len_ - 1;
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = res[i].real();
  return out;
}

}  // namespace lrd::numerics
