#include "numerics/special_functions.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace lrd::numerics {

namespace {

// Derivative of erf: 2/sqrt(pi) * exp(-x^2).
double erf_derivative(double x) noexcept {
  return 2.0 / std::sqrt(std::numbers::pi) * std::exp(-x * x);
}

}  // namespace

double erf_inv(double y) {
  if (!(y > -1.0 && y < 1.0)) throw std::domain_error("erf_inv: argument must be in (-1, 1)");
  if (y == 0.0) return 0.0;

  // Winitzki (2008) approximation, good to ~2e-3 relative; then Newton.
  const double a = 0.147;
  const double ln1my2 = std::log1p(-y * y);
  const double t1 = 2.0 / (std::numbers::pi * a) + ln1my2 / 2.0;
  const double x0 = std::copysign(std::sqrt(std::sqrt(t1 * t1 - ln1my2 / a) - t1), y);

  double x = x0;
  for (int i = 0; i < 3; ++i) {
    const double err = std::erf(x) - y;
    const double d = erf_derivative(x);
    if (d == 0.0) break;
    x -= err / d;
  }
  return x;
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) throw std::domain_error("normal_quantile: p must be in (0, 1)");
  return std::numbers::sqrt2 * erf_inv(2.0 * p - 1.0);
}

double normal_cdf(double x) noexcept { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

namespace {

// Lower-incomplete series: P(a, x) = x^a e^-x / Gamma(a) * sum x^n / (a)_{n+1}.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Upper-incomplete continued fraction (modified Lentz).
double gamma_q_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularized_gamma_q(double a, double x) {
  if (!(a > 0.0)) throw std::domain_error("regularized_gamma_q: a must be > 0");
  if (!(x >= 0.0)) throw std::domain_error("regularized_gamma_q: x must be >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double upper_incomplete_gamma(double a, double x) {
  return regularized_gamma_q(a, x) * std::tgamma(a);
}

void CompensatedSum::add(double x) noexcept {
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    comp_ += (sum_ - t) + x;
  } else {
    comp_ += (x - t) + sum_;
  }
  sum_ = t;
}

double neumaier_sum(const std::vector<double>& xs) noexcept {
  CompensatedSum acc;
  for (double x : xs) acc.add(x);
  return acc.value();
}

double log_add_exp(double a, double b) noexcept {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = std::max(a, b);
  return m + std::log1p(std::exp(std::min(a, b) - m));
}

double relative_gap(double a, double b) noexcept {
  const double mid = (std::abs(a) + std::abs(b)) / 2.0;
  if (mid == 0.0) return 0.0;
  return std::abs(a - b) / mid;
}

}  // namespace lrd::numerics
