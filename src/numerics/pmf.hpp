// Probability mass function over uniformly spaced support points.
//
// Used for occupancy distributions on a Grid (support = {0, d, 2d, ... B})
// and for marginal rate distributions after superposition. Offsets allow
// supports that do not start at zero (e.g. the increment pmf w(i) with
// i in [-M, M]).
#pragma once

#include <cstddef>
#include <vector>

#include "core/status.hpp"

namespace lrd::numerics {

/// Health summary of a raw mass vector — the numbers the solver's
/// per-iteration guardrails look at.
struct MassHealth {
  double mass = 0.0;       ///< Compensated sum of all entries.
  double min_entry = 0.0;  ///< Most negative entry (0 when none are negative).
  bool finite = true;      ///< False if any entry is NaN or +/-Inf.
};

/// Single-pass inspection of a mass vector.
MassHealth inspect_mass(const std::vector<double>& probs) noexcept;

/// Guardrail check for a probability vector: every entry finite, no entry
/// below -`negative_tolerance`, and total mass within `mass_tolerance` of
/// one. Returns ok, or a kNumericalGuard diagnostic naming the violated
/// invariant, tagged with `component`.
lrd::Status check_pmf_health(const std::vector<double>& probs, double mass_tolerance,
                             double negative_tolerance, const char* component);

/// Pmf with mass `probs()[k]` at value `origin() + k * step()`.
class Pmf {
 public:
  Pmf(double origin, double step, std::vector<double> probs);

  double origin() const noexcept { return origin_; }
  double step() const noexcept { return step_; }
  std::size_t size() const noexcept { return probs_.size(); }
  const std::vector<double>& probs() const noexcept { return probs_; }
  double value(std::size_t k) const noexcept { return origin_ + static_cast<double>(k) * step_; }

  /// Sum of all masses (1 for a proper pmf; callers may hold sub-pmfs).
  double total_mass() const noexcept;

  double mean() const noexcept;
  double variance() const noexcept;

  /// Rescales masses so they sum to one. Throws if total mass is ~0.
  void normalize();

  /// Pr{X <= x} (sums masses at support points <= x + tiny tolerance).
  double cdf(double x) const noexcept;

  /// Smallest support value v with Pr{X <= v} >= p (p in (0, 1]).
  double quantile(double p) const;

  /// Convolution of two pmfs with identical step. Support origins add.
  friend Pmf convolve(const Pmf& a, const Pmf& b);

  /// n-fold self-convolution (distribution of the sum of n iid copies).
  Pmf self_convolve(std::size_t n) const;

  /// Affine map of the support: value -> scale * value + shift.
  /// Masses are unchanged; step becomes |scale| * step. scale must be != 0.
  /// Negative scale reverses the support order.
  Pmf affine(double scale, double shift) const;

  /// Total variation distance between two pmfs on the same lattice.
  friend double total_variation(const Pmf& a, const Pmf& b);

 private:
  double origin_;
  double step_;
  std::vector<double> probs_;
};

Pmf convolve(const Pmf& a, const Pmf& b);
double total_variation(const Pmf& a, const Pmf& b);

}  // namespace lrd::numerics
