#include "numerics/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace lrd::numerics {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("Matrix: zero dimension");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.rows_) throw std::invalid_argument("Matrix multiply: shape mismatch");
  Matrix out(a.rows_, b.cols_);
  for (std::size_t i = 0; i < a.rows_; ++i)
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) out(i, j) += aik * b(k, j);
    }
  return out;
}

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * x[c];
  return out;
}

namespace {

/// In-place LU with partial pivoting. Returns the permutation sign, or 0
/// on singularity. `perm[i]` records the pivot row chosen at step i.
int lu_decompose(Matrix& a, std::vector<std::size_t>& perm) {
  const std::size_t n = a.rows();
  perm.resize(n);
  int sign = 1;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-300) return 0;
    perm[col] = pivot;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      sign = -sign;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      a(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
    }
  }
  return sign;
}

}  // namespace

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  if (a.rows() != a.cols() || a.rows() != b.size())
    throw std::invalid_argument("solve_linear_system: shape mismatch");
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm;
  if (lu_decompose(a, perm) == 0) throw std::domain_error("solve_linear_system: singular matrix");

  for (std::size_t i = 0; i < n; ++i) std::swap(b[i], b[perm[i]]);
  // Forward substitution (unit lower-triangular L).
  for (std::size_t r = 1; r < n; ++r)
    for (std::size_t c = 0; c < r; ++c) b[r] -= a(r, c) * b[c];
  // Back substitution (U).
  for (std::size_t r = n; r-- > 0;) {
    for (std::size_t c = r + 1; c < n; ++c) b[r] -= a(r, c) * b[c];
    b[r] /= a(r, r);
  }
  return b;
}

double determinant(Matrix a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("determinant: not square");
  std::vector<std::size_t> perm;
  const int sign = lu_decompose(a, perm);
  if (sign == 0) return 0.0;
  double det = sign;
  for (std::size_t i = 0; i < a.rows(); ++i) det *= a(i, i);
  return det;
}

std::vector<double> stationary_distribution(const Matrix& generator) {
  if (generator.rows() != generator.cols())
    throw std::invalid_argument("stationary_distribution: not square");
  const std::size_t n = generator.rows();
  // Solve pi Q = 0, sum pi = 1: replace the last column of Q^T with ones.
  Matrix a = generator.transposed();
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;
  auto pi = solve_linear_system(std::move(a), std::move(b));
  for (double p : pi)
    if (p < -1e-9) throw std::domain_error("stationary_distribution: negative probability (reducible chain?)");
  for (double& p : pi) p = std::max(p, 0.0);
  return pi;
}

}  // namespace lrd::numerics
