#include "numerics/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "core/status.hpp"
#include "numerics/fft_plan.hpp"

namespace lrd::numerics {

std::size_t next_pow2(std::size_t n) {
  if (n == 0) throw std::invalid_argument("next_pow2: n must be >= 1");
  std::size_t p = 1;
  while (p < n) {
    if (p > (std::size_t{1} << 62)) throw std::overflow_error("next_pow2: overflow");
    p <<= 1;
  }
  return p;
}

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

void fft_inplace(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft_inplace: size must be a power of two");
  if (n == 1) return;
  // Route through the shared plan cache: callers repeating a size reuse
  // its twiddle and bit-reversal tables instead of recomputing the
  // on-the-fly twiddle recurrence (which also loses a few digits).
  const FftPlan& plan = fft_plan(n);
  if (inverse) {
    plan.inverse(data.data());
  } else {
    plan.forward(data.data());
  }
}

std::vector<std::complex<double>> fft(std::vector<std::complex<double>> data) {
  fft_inplace(data, /*inverse=*/false);
  return data;
}

std::vector<std::complex<double>> ifft(std::vector<std::complex<double>> data) {
  fft_inplace(data, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& z : data) z *= inv_n;
  return data;
}

std::vector<std::complex<double>> fft_real(const std::vector<double>& x, std::size_t n) {
  if (!is_pow2(n) || n < x.size())
    throw std::invalid_argument("fft_real: n must be a power of two >= x.size()");
  if (!all_finite(x))
    throw_error(make_diagnostics(ErrorCategory::kNumericalGuard, "numerics.fft",
                                 "input signal is finite",
                                 "fft_real: non-finite (NaN/Inf) entry in input"));
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = {x[i], 0.0};
  fft_inplace(data, /*inverse=*/false);
  return data;
}

bool all_finite(const std::vector<double>& x) noexcept {
  for (double v : x)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace lrd::numerics
