#include "numerics/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/status.hpp"

namespace lrd::numerics {

std::size_t next_pow2(std::size_t n) {
  if (n == 0) throw std::invalid_argument("next_pow2: n must be >= 1");
  std::size_t p = 1;
  while (p < n) {
    if (p > (std::size_t{1} << 62)) throw std::overflow_error("next_pow2: overflow");
    p <<= 1;
  }
  return p;
}

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

void fft_inplace(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft_inplace: size must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<std::complex<double>> fft(std::vector<std::complex<double>> data) {
  fft_inplace(data, /*inverse=*/false);
  return data;
}

std::vector<std::complex<double>> ifft(std::vector<std::complex<double>> data) {
  fft_inplace(data, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& z : data) z *= inv_n;
  return data;
}

std::vector<std::complex<double>> fft_real(const std::vector<double>& x, std::size_t n) {
  if (!is_pow2(n) || n < x.size())
    throw std::invalid_argument("fft_real: n must be a power of two >= x.size()");
  if (!all_finite(x))
    throw_error(make_diagnostics(ErrorCategory::kNumericalGuard, "numerics.fft",
                                 "input signal is finite",
                                 "fft_real: non-finite (NaN/Inf) entry in input"));
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = {x[i], 0.0};
  fft_inplace(data, /*inverse=*/false);
  return data;
}

bool all_finite(const std::vector<double>& x) noexcept {
  for (double v : x)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace lrd::numerics
