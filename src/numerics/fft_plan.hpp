// Cached FFT plans: precomputed twiddle-factor and bit-reversal tables
// per power-of-two size, plus a real-to-complex / complex-to-real
// transform pair that exploits conjugate symmetry to halve the work.
//
// The naive transforms in fft.hpp recompute the twiddle recurrence on
// every call and allocate fresh output vectors; fine for one-shot
// analysis, ruinous for the solver's epoch loop, which runs millions of
// fixed-size transforms. A plan is built once per size, cached process
// wide, and applied in place with zero heap allocations — the layer
// everything hot (CachedKernelConvolver, DualKernelConvolver, the
// Davies-Harte fGn generator, the periodogram estimators) now sits on.
//
// Thread safety: fft_plan() lookup is mutex-guarded and the returned
// plan is immutable, so plans may be shared freely across the
// work-stealing executor's threads; apply-side state lives entirely in
// caller-owned buffers. Plans are never evicted (the working set is a
// handful of sizes), so returned references stay valid for the life of
// the process.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lrd::numerics {

/// Immutable DIT plan for one power-of-two size: bit-reversal
/// permutation table, the base twiddle table w[k] = e^{-2*pi*i*k/n} for
/// k < n/2 (the real transform's post-processing twiddles), and the
/// per-stage tables of the fused radix-2^2 decomposition.
///
/// The transform runs consecutive radix-2 stages (len, 2*len) as one
/// fused four-point butterfly pass — half the passes over the data, and
/// an inner loop that is a contiguous sweep over the twiddle index, the
/// shape the LRD_SIMD kernels (simd.hpp) vectorize. Each fused stage
/// carries contiguous copies of its three twiddle sequences
/// (wa = e^{-2*pi*i*k/len}, wb = e^{-2*pi*i*k/(2*len)}, wc = -i*wb) so
/// the kernels load them with unit stride. When log2(n) is odd the one
/// unpaired stage is the twiddle-free len == 2 pass, run first.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// In-place forward DFT of n complex points. No allocation.
  void forward(std::complex<double>* data) const noexcept;

  /// In-place unnormalized inverse DFT (callers divide by n).
  void inverse(std::complex<double>* data) const noexcept;

  /// w[k] = e^{-2*pi*i*k/n}, k < n/2 — also the post-processing twiddles
  /// of the real transform of size n built on the half-size plan.
  const std::complex<double>* twiddles() const noexcept { return twiddle_.data(); }

 private:
  /// One fused pass covering the radix-2 stages (len, 2 * len); the
  /// offsets index stage_twiddle_ (len / 2 entries per sequence).
  struct Stage {
    std::size_t len;
    std::size_t wa, wb, wc;
  };

  void transform(std::complex<double>* data, bool inverse) const noexcept;

  std::size_t n_;
  bool leading_len2_ = false;  ///< run the unpaired len == 2 pass first
  std::vector<std::uint32_t> bitrev_;
  std::vector<std::complex<double>> twiddle_;
  std::vector<Stage> stages_;
  std::vector<std::complex<double>> stage_twiddle_;
};

/// Shared plan for size n (a power of two), building and caching it on
/// first use. Thread-safe; the reference is valid forever.
const FftPlan& fft_plan(std::size_t n);

/// Number of distinct sizes currently cached (diagnostics/tests).
std::size_t fft_plan_cache_size() noexcept;

/// Real-input transform pair of size n (a power of two >= 2), built on
/// the half-size complex plan: a length-n real signal costs one
/// length-n/2 complex transform plus an O(n) butterfly.
///
/// Spectrum layout: the non-redundant half, spec[k] = X[k] for
/// k = 0..n/2 (n/2 + 1 entries); X[0] and X[n/2] are real. The inverse
/// assumes (and does not check) Hermitian symmetry of the implied full
/// spectrum, i.e. that the half-spectrum came from real data.
class RealFft {
 public:
  explicit RealFft(std::size_t n);

  std::size_t size() const noexcept { return n_; }
  std::size_t spectrum_size() const noexcept { return n_ / 2 + 1; }

  /// Forward transform of x[0..len) zero-padded to n (len <= n).
  /// Writes spectrum_size() entries to `spec` (which must not alias x).
  /// No allocation, no finiteness check — hot-path callers validate
  /// inputs once up front (see CachedKernelConvolver).
  void forward(const double* x, std::size_t len, std::complex<double>* spec) const noexcept;

  /// Normalized inverse (divides by n): consumes the half-spectrum in
  /// `spec` (clobbering it) and writes n real samples to `out`.
  void inverse(std::complex<double>* spec, double* out) const noexcept;

 private:
  std::size_t n_;
  const FftPlan* half_;  ///< plan of size n/2 (null when n == 2)
  const FftPlan* full_;  ///< plan of size n, for its twiddle table
};

}  // namespace lrd::numerics
