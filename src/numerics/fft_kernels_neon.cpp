// NEON kernel table for aarch64, where Advanced SIMD is baseline — no
// special compile flags and no CPUID check needed. A 128-bit register
// holds one complex double, so the win over scalar comes from the
// shuffle-free FMA complex multiply and the compiler interleaving two
// independent butterflies per iteration, not from lane width.
#include "numerics/simd.hpp"

#if LRD_SIMD && defined(__aarch64__)

#include <arm_neon.h>

namespace lrd::numerics::simd::detail {

namespace {

/// x * w for one complex double per register ([re, im] lanes).
template <bool Conj>
inline float64x2_t cmul_neon(float64x2_t x, float64x2_t w) noexcept {
  const float64x2_t wr = vdupq_laneq_f64(w, 0);  // [wr, wr]
  const float64x2_t wi = vdupq_laneq_f64(w, 1);  // [wi, wi]
  const float64x2_t xs = vextq_f64(x, x, 1);     // [im, re]
  // forward: [xr*wr - xi*wi, xi*wr + xr*wi]
  // conj:    [xr*wr + xi*wi, xi*wr - xr*wi]
  const float64x2_t sign = Conj ? float64x2_t{1.0, -1.0} : float64x2_t{-1.0, 1.0};
  return vfmaq_f64(vmulq_f64(x, wr), vmulq_f64(xs, sign), wi);
}

template <bool Inverse>
void radix4_neon(std::complex<double>* d, std::size_t n, std::size_t len,
                 const std::complex<double>* wa, const std::complex<double>* wb,
                 const std::complex<double>* wc) noexcept {
  const std::size_t q = len / 2;
  const std::size_t block = 2 * len;
  for (std::size_t j = 0; j < n; j += block) {
    double* p0 = reinterpret_cast<double*>(d + j);
    double* p1 = reinterpret_cast<double*>(d + j + q);
    double* p2 = reinterpret_cast<double*>(d + j + len);
    double* p3 = reinterpret_cast<double*>(d + j + len + q);
    for (std::size_t k = 0; k < q; ++k) {
      const float64x2_t x0 = vld1q_f64(p0 + 2 * k);
      const float64x2_t x1 = vld1q_f64(p1 + 2 * k);
      const float64x2_t x2 = vld1q_f64(p2 + 2 * k);
      const float64x2_t x3 = vld1q_f64(p3 + 2 * k);
      const float64x2_t wav = vld1q_f64(reinterpret_cast<const double*>(wa + k));
      const float64x2_t wbv = vld1q_f64(reinterpret_cast<const double*>(wb + k));
      const float64x2_t wcv = vld1q_f64(reinterpret_cast<const double*>(wc + k));
      const float64x2_t t1 = cmul_neon<Inverse>(x1, wav);
      const float64x2_t a0 = vaddq_f64(x0, t1);
      const float64x2_t a1 = vsubq_f64(x0, t1);
      const float64x2_t t3 = cmul_neon<Inverse>(x3, wav);
      const float64x2_t a2 = vaddq_f64(x2, t3);
      const float64x2_t a3 = vsubq_f64(x2, t3);
      const float64x2_t u2 = cmul_neon<Inverse>(a2, wbv);
      const float64x2_t u3 = cmul_neon<Inverse>(a3, wcv);
      vst1q_f64(p0 + 2 * k, vaddq_f64(a0, u2));
      vst1q_f64(p2 + 2 * k, vsubq_f64(a0, u2));
      vst1q_f64(p1 + 2 * k, vaddq_f64(a1, u3));
      vst1q_f64(p3 + 2 * k, vsubq_f64(a1, u3));
    }
  }
}

void radix4_pass_neon(std::complex<double>* data, std::size_t n, std::size_t len,
                      const std::complex<double>* wa, const std::complex<double>* wb,
                      const std::complex<double>* wc, bool inverse) {
  if (inverse)
    radix4_neon<true>(data, n, len, wa, wb, wc);
  else
    radix4_neon<false>(data, n, len, wa, wb, wc);
}

void cmul_neon_n(std::complex<double>* a, const std::complex<double>* b, std::size_t count) {
  double* pa = reinterpret_cast<double*>(a);
  const double* pb = reinterpret_cast<const double*>(b);
  for (std::size_t i = 0; i < count; ++i) {
    const float64x2_t va = vld1q_f64(pa + 2 * i);
    const float64x2_t vb = vld1q_f64(pb + 2 * i);
    vst1q_f64(pa + 2 * i, cmul_neon<false>(va, vb));
  }
}

const FftKernels kNeonKernels{Isa::kNeon, "neon", &radix4_pass_neon, &cmul_neon_n};

}  // namespace

const FftKernels* neon_fft_kernels() noexcept { return &kNeonKernels; }

}  // namespace lrd::numerics::simd::detail

#else  // compiled out: wrong architecture or -DLRD_DISABLE_SIMD

namespace lrd::numerics::simd::detail {
const FftKernels* neon_fft_kernels() noexcept { return nullptr; }
}  // namespace lrd::numerics::simd::detail

#endif
