// Linear convolution of real sequences, direct and FFT-based, plus a
// cached-kernel convolver for repeated convolutions against a fixed kernel
// (the inner loop of the queue-occupancy recursion, Eq. 19 of the paper).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace lrd::numerics {

/// Direct O(|a|*|b|) linear convolution. Result size |a| + |b| - 1.
std::vector<double> convolve_direct(const std::vector<double>& a, const std::vector<double>& b);

/// FFT-based linear convolution with zero padding, O(n log n).
std::vector<double> convolve_fft(const std::vector<double>& a, const std::vector<double>& b);

/// Size-based dispatch between the direct and FFT paths.
std::vector<double> convolve(const std::vector<double>& a, const std::vector<double>& b);

/// n-fold self-convolution of a sequence (n >= 1).
std::vector<double> self_convolve(const std::vector<double>& a, std::size_t n);

/// Convolver that transforms a fixed kernel once and reuses its spectrum.
///
/// The queue recursion convolves the occupancy pmf (length M+1) with the
/// fixed increment pmf (length 2M+1) every iteration; caching the kernel
/// spectrum roughly halves the per-iteration FFT work.
class CachedKernelConvolver {
 public:
  /// `kernel` is the fixed sequence; `max_signal_len` bounds the length of
  /// the signals that will later be convolved against it.
  CachedKernelConvolver(std::vector<double> kernel, std::size_t max_signal_len);

  /// Linear convolution `signal * kernel`; `signal.size() <= max_signal_len`.
  std::vector<double> convolve(const std::vector<double>& signal) const;

  std::size_t kernel_size() const noexcept { return kernel_len_; }
  std::size_t fft_size() const noexcept { return n_; }

  /// Total mass of the cached kernel. Convolution preserves mass, so the
  /// output of convolve() must sum to signal_mass * kernel_mass() up to
  /// FFT round-off — the invariant the solver's mass-conservation
  /// guardrail checks against.
  double kernel_mass() const noexcept { return kernel_mass_; }

 private:
  std::size_t kernel_len_;
  std::size_t max_signal_len_;
  std::size_t n_;  // FFT size (power of two)
  double kernel_mass_ = 0.0;
  std::vector<std::complex<double>> kernel_spectrum_;
};

}  // namespace lrd::numerics
