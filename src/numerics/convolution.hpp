// Linear convolution of real sequences, direct and FFT-based, plus
// cached-kernel convolvers for repeated convolutions against fixed
// kernels (the inner loop of the queue-occupancy recursion, Eq. 19 of
// the paper).
//
// Workspace ownership: the hot entry points (`convolve_into`) never
// allocate — the caller constructs a Workspace once (per level, per
// thread) and threads it through every call. Workspaces are cheap,
// movable, and tied to the convolver's FFT size; sharing one workspace
// between two convolvers of the same fft_size() is allowed, sharing one
// across threads is not. The allocating wrappers (`convolve`,
// `convolve_fft`) remain for cold callers and tests.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "numerics/fft_plan.hpp"

namespace lrd::numerics {

/// Direct O(|a|*|b|) linear convolution. Result size |a| + |b| - 1.
std::vector<double> convolve_direct(const std::vector<double>& a, const std::vector<double>& b);

/// FFT-based linear convolution with zero padding, O(n log n). Strictly
/// validates both inputs (finiteness) — this is the cold public entry;
/// the cached convolvers validate their kernel once at construction.
std::vector<double> convolve_fft(const std::vector<double>& a, const std::vector<double>& b);

/// Size-based dispatch between the direct and FFT paths.
std::vector<double> convolve(const std::vector<double>& a, const std::vector<double>& b);

/// n-fold self-convolution of a sequence (n >= 1), computed by spectrum
/// powering: one forward transform, a pointwise n-th power, one inverse
/// — instead of n - 1 repeated convolutions with their O(n) reallocation
/// churn. Small outputs fall back to exact repeated direct convolution.
std::vector<double> self_convolve(const std::vector<double>& a, std::size_t n);

/// Convolver that transforms a fixed kernel once and reuses its
/// (half, conjugate-symmetric) spectrum. The kernel is validated finite
/// at construction; signals are NOT re-scanned per call — repeated-use
/// callers (the solver) own guardrails that catch runtime NaN/Inf.
class CachedKernelConvolver {
 public:
  /// `kernel` is the fixed sequence; `max_signal_len` bounds the length of
  /// the signals that will later be convolved against it.
  CachedKernelConvolver(std::vector<double> kernel, std::size_t max_signal_len);

  /// Caller-owned scratch space for the zero-allocation path.
  struct Workspace {
    std::vector<std::complex<double>> freq;  ///< fft_size()/2 + 1 bins
    std::vector<double> time;                ///< fft_size() samples
  };
  Workspace make_workspace() const {
    return Workspace{std::vector<std::complex<double>>(n_ / 2 + 1),
                     std::vector<double>(n_)};
  }

  /// Linear convolution `signal[0..len) * kernel` written to
  /// `out[0..len + kernel_size() - 1)`. Zero heap allocations below the
  /// parallel-multiply threshold (32k spectrum bins, i.e. every solver
  /// level); at or above it the spectrum product is chunked across the
  /// executor, which allocates one job per call.
  void convolve_into(const double* signal, std::size_t len, Workspace& ws, double* out) const;

  /// Allocating wrapper: `signal.size() <= max_signal_len`.
  std::vector<double> convolve(const std::vector<double>& signal) const;

  std::size_t kernel_size() const noexcept { return kernel_len_; }
  std::size_t fft_size() const noexcept { return n_; }

  /// Total mass of the cached kernel. Convolution preserves mass, so the
  /// output of convolve() must sum to signal_mass * kernel_mass() up to
  /// FFT round-off — the invariant the solver's mass-conservation
  /// guardrail checks against.
  double kernel_mass() const noexcept { return kernel_mass_; }

 private:
  std::size_t kernel_len_;
  std::size_t max_signal_len_;
  std::size_t n_;  // FFT size (power of two)
  double kernel_mass_ = 0.0;
  RealFft rfft_;
  std::vector<std::complex<double>> kernel_spectrum_;  // n_/2 + 1 bins
};

/// Two same-length kernels, two signals, one complex FFT round-trip:
/// the classic two-for-one trick. The signals ride as the real and
/// imaginary parts of a single complex transform, the packed spectrum is
/// split by conjugate symmetry, multiplied bin-wise by the respective
/// kernel spectra, recombined, and brought back with one inverse — the
/// per-epoch cost of the solver's paired Q_L / Q_H chains.
class DualKernelConvolver {
 public:
  /// Kernels must be non-empty, finite, and the same length.
  DualKernelConvolver(std::vector<double> kernel_a, std::vector<double> kernel_b,
                      std::size_t max_signal_len);

  struct Workspace {
    std::vector<std::complex<double>> freq;  ///< fft_size() bins
  };
  Workspace make_workspace() const {
    return Workspace{std::vector<std::complex<double>>(n_)};
  }

  /// out_a = a * kernel_a and out_b = b * kernel_b, both of size
  /// `len + kernel_size() - 1`, in one FFT round-trip. Zero allocations.
  void convolve_into(const double* a, const double* b, std::size_t len, Workspace& ws,
                     double* out_a, double* out_b) const;

  std::size_t kernel_size() const noexcept { return kernel_len_; }
  std::size_t fft_size() const noexcept { return n_; }
  double kernel_mass_a() const noexcept { return mass_a_; }
  double kernel_mass_b() const noexcept { return mass_b_; }

 private:
  std::size_t kernel_len_;
  std::size_t max_signal_len_;
  std::size_t n_;
  double mass_a_ = 0.0;
  double mass_b_ = 0.0;
  const FftPlan* plan_;                         // full complex plan of size n_
  std::vector<std::complex<double>> spec_a_;    // full n_-bin kernel spectra
  std::vector<std::complex<double>> spec_b_;
};

}  // namespace lrd::numerics
