// Deterministic, self-contained random number generation.
//
// xoshiro256++ core generator plus the samplers the traffic generators
// need. Every randomized component in the library takes an explicit seed so
// tests and benchmark figures are exactly reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace lrd::numerics {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 bits of resolution.
  double uniform() noexcept;

  /// Uniform double in (0, 1) — never returns exactly 0 (safe for logs and
  /// inverse-transform sampling with poles at 0).
  double uniform_open() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n) (n >= 1), unbiased via rejection.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Pareto with scale xm > 0 and shape alpha > 0: ccdf (x/xm)^-alpha.
  double pareto(double xm, double alpha) noexcept;

  /// Lognormal with parameters of the underlying normal.
  double lognormal(double mu_log, double sigma_log) noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Walker alias table for O(1) sampling from a finite discrete distribution.
class AliasTable {
 public:
  /// `weights` must be non-negative with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  std::size_t sample(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
};

/// Fisher-Yates in-place shuffle of indices [0, n); returns the permutation.
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace lrd::numerics
