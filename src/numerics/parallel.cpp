#include "numerics/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace lrd::numerics {

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  threads = std::min(threads, n);

  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace lrd::numerics
