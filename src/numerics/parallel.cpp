#include "numerics/parallel.hpp"

#include <cstdlib>
#include <string>
#include <thread>

#include "runtime/executor.hpp"

namespace lrd::numerics {

namespace detail {

void parallel_for_ranges_erased(std::size_t n, std::size_t grain,
                                const std::function<void(std::size_t, std::size_t)>& fn,
                                std::size_t threads) {
  runtime::Executor::global().parallel_for_ranges(n, grain, fn, threads);
}

}  // namespace detail

std::size_t default_thread_count() noexcept {
  if (const char* env = std::getenv("LRDQ_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace lrd::numerics
