#include "numerics/parallel.hpp"

#include "runtime/executor.hpp"

namespace lrd::numerics {

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  runtime::Executor::global().parallel_for(n, fn, threads);
}

}  // namespace lrd::numerics
