// Radix-2 complex FFT and helpers.
//
// Self-contained replacement for an external FFT dependency. These are
// the *cold*, validating entry points; they now execute through the
// shared plan cache in fft_plan.hpp, which is also where hot consumers
// (the solver's convolution engine, the fGn generator, the periodogram
// estimators) go directly for allocation-free, real-input transforms.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace lrd::numerics {

/// Returns the smallest power of two >= n (n >= 1). Throws on n == 0.
std::size_t next_pow2(std::size_t n);

/// Returns true iff n is a power of two (n >= 1).
bool is_pow2(std::size_t n) noexcept;

/// In-place DFT via the cached plan for `data.size()` — the process has
/// exactly one transform implementation (FftPlan's fused radix-2^2
/// stages with LRD_SIMD butterfly kernels); this wrapper only adds the
/// size check and the cache lookup.
///
/// `data.size()` must be a power of two. `inverse == true` computes the
/// unnormalized inverse transform; callers divide by N themselves (or use
/// ifft() which does it for them).
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse);

/// Forward FFT of a complex vector (size must be a power of two).
std::vector<std::complex<double>> fft(std::vector<std::complex<double>> data);

/// Normalized inverse FFT (divides by N).
std::vector<std::complex<double>> ifft(std::vector<std::complex<double>> data);

/// Forward FFT of a real vector zero-padded to `n` (a power of two >= x.size()).
/// Rejects non-finite input (a NaN anywhere in the signal would otherwise
/// silently poison the whole spectrum and every value convolved with it).
/// Cold path: allocates and scans every call. Hot loops use RealFft from
/// fft_plan.hpp and validate their inputs once up front instead.
std::vector<std::complex<double>> fft_real(const std::vector<double>& x, std::size_t n);

/// True iff every entry is finite (no NaN/Inf).
bool all_finite(const std::vector<double>& x) noexcept;

}  // namespace lrd::numerics
