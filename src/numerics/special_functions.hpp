// Special functions and numerically careful primitives used across the
// library: inverse error function (Eq. 26 of the paper needs erf^-1),
// compensated summation, and log-space helpers.
#pragma once

#include <cstddef>
#include <vector>

namespace lrd::numerics {

/// Inverse error function on (-1, 1).
///
/// Winitzki-style initial approximation polished with two Newton steps on
/// erf(x) - y = 0; relative error < 1e-12 across (-1 + 1e-12, 1 - 1e-12).
/// Throws std::domain_error outside (-1, 1).
double erf_inv(double y);

/// Inverse of the standard normal CDF (probit), Phi^-1(p), p in (0, 1).
double normal_quantile(double p);

/// Standard normal CDF.
double normal_cdf(double x) noexcept;

/// Regularized upper incomplete gamma Q(a, x) = Gamma(a, x) / Gamma(a),
/// a > 0, x >= 0. Series expansion for x < a + 1, Lentz continued
/// fraction otherwise; absolute error < 1e-12.
double regularized_gamma_q(double a, double x);

/// Upper incomplete gamma Gamma(a, x) = Q(a, x) * Gamma(a).
double upper_incomplete_gamma(double a, double x);

/// Neumaier compensated sum: accurate sum of a vector of doubles.
double neumaier_sum(const std::vector<double>& xs) noexcept;

/// Running compensated accumulator (Neumaier variant of Kahan summation).
class CompensatedSum {
 public:
  void add(double x) noexcept;
  double value() const noexcept { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// log(exp(a) + exp(b)) without overflow.
double log_add_exp(double a, double b) noexcept;

/// Relative gap |a - b| / midpoint, with midpoint = (|a| + |b|)/2.
/// Returns 0 when both are 0.
double relative_gap(double a, double b) noexcept;

}  // namespace lrd::numerics
