#include "numerics/pmf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "numerics/convolution.hpp"
#include "numerics/special_functions.hpp"

namespace lrd::numerics {

MassHealth inspect_mass(const std::vector<double>& probs) noexcept {
  MassHealth h;
  CompensatedSum acc;
  for (double p : probs) {
    if (!std::isfinite(p)) {
      h.finite = false;
      continue;
    }
    acc.add(p);
    if (p < h.min_entry) h.min_entry = p;
  }
  h.mass = acc.value();
  return h;
}

namespace {

std::string format_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

lrd::Status check_pmf_health(const std::vector<double>& probs, double mass_tolerance,
                             double negative_tolerance, const char* component) {
  const MassHealth h = inspect_mass(probs);
  auto fail = [&](const char* invariant, std::string message) {
    return lrd::Status::failure(lrd::make_diagnostics(lrd::ErrorCategory::kNumericalGuard,
                                                      component, invariant, std::move(message)));
  };
  if (!h.finite) return fail("pmf entries are finite", "NaN/Inf entry in probability vector");
  if (h.min_entry < -negative_tolerance)
    return fail("pmf entries are non-negative",
                "entry " + format_g(h.min_entry) + " below -" + format_g(negative_tolerance));
  if (std::abs(h.mass - 1.0) > mass_tolerance)
    return fail("pmf conserves unit mass", "total mass " + format_g(h.mass) +
                                               " deviates from 1 by more than " +
                                               format_g(mass_tolerance));
  return lrd::Status::ok();
}

Pmf::Pmf(double origin, double step, std::vector<double> probs)
    : origin_(origin), step_(step), probs_(std::move(probs)) {
  if (probs_.empty()) throw std::invalid_argument("Pmf: empty support");
  if (!(step_ > 0.0)) throw std::invalid_argument("Pmf: step must be > 0");
  for (double p : probs_) {
    if (!(p >= -1e-12) || !std::isfinite(p)) throw std::invalid_argument("Pmf: negative or non-finite mass");
  }
  // Clamp tiny negative round-off from FFT convolutions.
  for (double& p : probs_) p = std::max(p, 0.0);
}

double Pmf::total_mass() const noexcept { return neumaier_sum(probs_); }

double Pmf::mean() const noexcept {
  CompensatedSum acc;
  for (std::size_t k = 0; k < probs_.size(); ++k) acc.add(probs_[k] * value(k));
  const double m = total_mass();
  return m > 0.0 ? acc.value() / m : 0.0;
}

double Pmf::variance() const noexcept {
  const double mu = mean();
  CompensatedSum acc;
  for (std::size_t k = 0; k < probs_.size(); ++k) {
    const double d = value(k) - mu;
    acc.add(probs_[k] * d * d);
  }
  const double m = total_mass();
  return m > 0.0 ? acc.value() / m : 0.0;
}

void Pmf::normalize() {
  const double m = total_mass();
  if (m <= 1e-300) throw std::domain_error("Pmf::normalize: total mass is zero");
  for (double& p : probs_) p /= m;
}

double Pmf::cdf(double x) const noexcept {
  const double tol = step_ * 1e-9;
  CompensatedSum acc;
  for (std::size_t k = 0; k < probs_.size(); ++k) {
    if (value(k) <= x + tol) acc.add(probs_[k]);
  }
  return std::min(acc.value(), 1.0);
}

double Pmf::quantile(double p) const {
  if (!(p > 0.0 && p <= 1.0)) throw std::domain_error("Pmf::quantile: p must be in (0, 1]");
  CompensatedSum acc;
  for (std::size_t k = 0; k < probs_.size(); ++k) {
    acc.add(probs_[k]);
    if (acc.value() >= p - 1e-12) return value(k);
  }
  return value(probs_.size() - 1);
}

Pmf convolve(const Pmf& a, const Pmf& b) {
  if (std::abs(a.step_ - b.step_) > 1e-12 * std::max(a.step_, b.step_))
    throw std::invalid_argument("convolve(Pmf): steps differ");
  auto probs = convolve(a.probs_, b.probs_);
  return Pmf(a.origin_ + b.origin_, a.step_, std::move(probs));
}

Pmf Pmf::self_convolve(std::size_t n) const {
  if (n == 0) throw std::invalid_argument("Pmf::self_convolve: n must be >= 1");
  auto probs = lrd::numerics::self_convolve(probs_, n);
  return Pmf(origin_ * static_cast<double>(n), step_, std::move(probs));
}

Pmf Pmf::affine(double scale, double shift) const {
  if (scale == 0.0) throw std::invalid_argument("Pmf::affine: scale must be != 0");
  if (scale > 0.0) return Pmf(origin_ * scale + shift, step_ * scale, probs_);
  // Negative scale: reverse so support stays increasing.
  std::vector<double> rev(probs_.rbegin(), probs_.rend());
  const double last = value(probs_.size() - 1);
  return Pmf(last * scale + shift, step_ * (-scale), std::move(rev));
}

double total_variation(const Pmf& a, const Pmf& b) {
  if (std::abs(a.step_ - b.step_) > 1e-12 * std::max(a.step_, b.step_) ||
      std::abs(a.origin_ - b.origin_) > 1e-9 * a.step_ || a.size() != b.size())
    throw std::invalid_argument("total_variation: pmfs must share a lattice");
  CompensatedSum acc;
  for (std::size_t k = 0; k < a.size(); ++k) acc.add(std::abs(a.probs_[k] - b.probs_[k]));
  return acc.value() / 2.0;
}

}  // namespace lrd::numerics
