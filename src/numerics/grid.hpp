// Uniform grid over [0, B] and the floor/ceiling quantization operators
// phi_L^M / phi_H^M of Eq. 15 in the paper.
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace lrd::numerics {

/// A uniform grid of M intervals (M+1 points) over [0, B]; d = B / M.
///
/// Bin j corresponds to the value j * d. The two quantization operators
/// phi_L (round down) and phi_H (round up) map a continuous value in
/// [0, B] to a grid point, bracketing it: phi_L(x) <= x <= phi_H(x).
class Grid {
 public:
  Grid(double upper, std::size_t bins) : upper_(upper), bins_(bins) {
    if (!(upper > 0.0)) throw std::invalid_argument("Grid: upper bound must be > 0");
    if (bins == 0) throw std::invalid_argument("Grid: bins must be >= 1");
    step_ = upper / static_cast<double>(bins);
  }

  double upper() const noexcept { return upper_; }
  std::size_t bins() const noexcept { return bins_; }
  std::size_t points() const noexcept { return bins_ + 1; }
  double step() const noexcept { return step_; }

  /// Value of grid point j.
  double value(std::size_t j) const noexcept { return static_cast<double>(j) * step_; }

  /// phi_L^M: largest grid index with value <= x (x clamped to [0, upper]).
  std::size_t floor_index(double x) const noexcept {
    if (x <= 0.0) return 0;
    if (x >= upper_) return bins_;
    auto j = static_cast<std::size_t>(std::floor(x / step_));
    return j > bins_ ? bins_ : j;
  }

  /// phi_H^M: smallest grid index with value >= x (x clamped to [0, upper]).
  std::size_t ceil_index(double x) const noexcept {
    if (x <= 0.0) return 0;
    if (x >= upper_) return bins_;
    auto j = static_cast<std::size_t>(std::ceil(x / step_));
    return j > bins_ ? bins_ : j;
  }

  double floor_quantize(double x) const noexcept { return value(floor_index(x)); }
  double ceil_quantize(double x) const noexcept { return value(ceil_index(x)); }

  /// The refinement with m * bins intervals over the same range.
  Grid refined(std::size_t m) const { return Grid(upper_, bins_ * m); }

 private:
  double upper_;
  std::size_t bins_;
  double step_;
};

}  // namespace lrd::numerics
