// Minimal data parallelism for the experiment sweeps.
//
// The figure surfaces solve dozens of independent queue models; each
// solve is pure (no shared mutable state), so a static block partition
// over hardware threads is all the machinery needed.
#pragma once

#include <cstddef>
#include <functional>

namespace lrd::numerics {

/// Invokes fn(i) for i in [0, n), distributing the indices over up to
/// `threads` worker threads (0 = hardware concurrency). fn must be safe
/// to call concurrently for distinct i. Exceptions thrown by fn are
/// rethrown (the first one encountered) after all workers join.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace lrd::numerics
