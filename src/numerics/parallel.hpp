// Minimal data parallelism for the experiment sweeps and the numerics
// hot paths.
//
// The figure surfaces solve dozens of independent queue models whose
// per-cell cost is heavy-tailed, so the indices are scheduled by the
// shared work-stealing executor (runtime::Executor) rather than a static
// partition; this header stays the stable, dependency-light entry point.
//
// Both entry points are templates over the callable: the scheduler pays
// one type-erased call per *popped index range*, never per element —
// the per-element calls compile inline against the concrete callable.
// (The old std::function-per-index signature cost the threaded fold a
// virtual dispatch on every bin.)
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

namespace lrd::numerics {

namespace detail {

/// Type-erased bridge to runtime::Executor::global().parallel_for_ranges
/// (keeps runtime/executor.hpp out of this header's include graph).
void parallel_for_ranges_erased(std::size_t n, std::size_t grain,
                                const std::function<void(std::size_t, std::size_t)>& fn,
                                std::size_t threads);

}  // namespace detail

/// Invokes fn(i) for i in [0, n), distributing the indices over up to
/// `threads` worker threads (0 = hardware concurrency) of the process-wide
/// work-stealing pool. fn must be safe to call concurrently for distinct
/// i. The first exception thrown by fn cancels all tasks not yet started
/// (running tasks finish) and is rethrown after the job winds down.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t threads = 0) {
  detail::parallel_for_ranges_erased(
      n, 1,
      [&fn](std::size_t begin, std::size_t end) {
        for (; begin < end; ++begin) fn(begin);
      },
      threads);
}

/// Range-batched variant: fn(begin, end) is invoked on disjoint
/// half-open subranges covering [0, n) exactly once, each holding up to
/// `grain` indices — the right entry for cheap per-element work (the
/// convolver's spectrum multiply), where per-index scheduling would be
/// all overhead. Same concurrency and error contract as parallel_for.
template <typename Fn>
void parallel_for_ranges(std::size_t n, std::size_t grain, Fn&& fn, std::size_t threads = 0) {
  detail::parallel_for_ranges_erased(
      n, grain,
      [&fn](std::size_t begin, std::size_t end) { fn(begin, end); }, threads);
}

/// Worker count for auto-threaded numerics (the fold engine's
/// FoldConcurrency default): LRDQ_THREADS when set to a positive
/// integer, else std::thread::hardware_concurrency(), never 0.
std::size_t default_thread_count() noexcept;

}  // namespace lrd::numerics
