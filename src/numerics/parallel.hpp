// Minimal data parallelism for the experiment sweeps.
//
// The figure surfaces solve dozens of independent queue models whose
// per-cell cost is heavy-tailed, so the indices are scheduled by the
// shared work-stealing executor (runtime::Executor) rather than a static
// partition; this header stays the stable, dependency-light entry point.
#pragma once

#include <cstddef>
#include <functional>

namespace lrd::numerics {

/// Invokes fn(i) for i in [0, n), distributing the indices over up to
/// `threads` worker threads (0 = hardware concurrency) of the process-wide
/// work-stealing pool. fn must be safe to call concurrently for distinct
/// i. The first exception thrown by fn cancels all tasks not yet started
/// (running tasks finish) and is rethrown after the job winds down.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace lrd::numerics
