// LRD_SIMD dispatch layer: runtime-selected vector kernels for the FFT
// butterfly passes and the convolver's spectrum multiply.
//
// The transform core (fft_plan.cpp) is organized as fused radix-2^2
// stage pairs whose inner butterfly is a pure data-parallel sweep over
// the twiddle index; this header exposes that sweep as a function-table
// entry so one binary carries a scalar implementation plus whatever the
// target ISA offers (AVX2+FMA on x86-64, NEON on aarch64) and picks at
// runtime. Selection happens once, on first use, via an atomic pointer:
//   1. `LRDQ_SIMD=scalar|avx2|neon` forces a path (ignored when the
//      requested ISA is not compiled in or not supported by the CPU);
//   2. otherwise the best supported ISA wins (AVX2 requires both the
//      avx2 and fma CPUID bits; NEON is baseline on aarch64);
//   3. `-DLRD_DISABLE_SIMD=ON` compiles the vector TUs out entirely,
//      leaving only the scalar table (LRD_SIMD == 0).
// The vector kernels live in separate translation units compiled with
// the matching -m flags; nothing outside those TUs executes vector
// instructions, so the binary stays safe on older CPUs.
//
// Parity contract: every table computes the same butterflies in the
// same order — implementations differ only in FMA contraction, so
// scalar and vector spectra agree to ~1e-15 relative (the test suite
// pins 1e-12 across sizes 8..16384). Thread count never changes which
// table runs; results are reproducible across LRDQ_THREADS settings.
#pragma once

#include <complex>
#include <cstddef>

#if defined(LRD_DISABLE_SIMD)
#define LRD_SIMD 0
#else
#define LRD_SIMD 1
#endif

namespace lrd::numerics::simd {

enum class Isa { kScalar = 0, kAvx2, kNeon };

/// One fused radix-2^2 butterfly pass over the whole array: for every
/// block of `2 * len` points and every k < len / 2 it applies the
/// four-point butterfly
///   a0 = x0 + wa[k] x1    a1 = x0 - wa[k] x1
///   a2 = x2 + wa[k] x3    a3 = x2 - wa[k] x3
///   y0 = a0 + wb[k] a2    y2 = a0 - wb[k] a2
///   y1 = a1 + wc[k] a3    y3 = a1 - wc[k] a3
/// where x0..x3 sit at offsets {k, k + len/2, k + len, k + 3len/2} and
/// wc[k] = -i wb[k] (precomputed). `inverse` conjugates every twiddle.
using Radix4PassFn = void (*)(std::complex<double>* data, std::size_t n, std::size_t len,
                              const std::complex<double>* wa, const std::complex<double>* wb,
                              const std::complex<double>* wc, bool inverse);

/// Pointwise complex multiply a[i] *= b[i] for i < count (the cached
/// convolver's spectrum product).
using CmulFn = void (*)(std::complex<double>* a, const std::complex<double>* b,
                        std::size_t count);

/// Immutable kernel table for one ISA. Tables have static storage
/// duration; pointers to them stay valid for the life of the process.
struct FftKernels {
  Isa isa;
  const char* name;  ///< "scalar", "avx2" or "neon" — recorded in bench env
  Radix4PassFn radix4_pass;
  CmulFn cmul;
};

/// The kernel table in use (detected on first call; see file comment).
/// Lock-free after the first call — safe on any hot path.
const FftKernels& active_fft_kernels() noexcept;

/// Name of the active table ("scalar", "avx2", "neon") — what the bench
/// env fingerprint records so regressions across machines are
/// attributable to the ISA actually exercised.
const char* active_isa_name() noexcept;

/// Test seam: force a specific table. Returns false (and leaves the
/// active table unchanged) when the requested ISA is not compiled in or
/// not supported by this CPU. Not for use while transforms are running
/// on other threads.
bool set_active_kernels_for_testing(Isa isa) noexcept;

/// Test seam: drop any forced table and re-detect on next use.
void reset_active_kernels_for_testing() noexcept;

namespace detail {

/// Scalar reference implementation (also the vector kernels' tail for
/// the len == 2 pass). Non-inline on purpose: the AVX2 TU calls it, and
/// an inline definition compiled there could be the copy the linker
/// keeps — with AVX2 encodings — breaking the scalar fallback on older
/// CPUs.
void radix4_pass_scalar(std::complex<double>* data, std::size_t n, std::size_t len,
                        const std::complex<double>* wa, const std::complex<double>* wb,
                        const std::complex<double>* wc, bool inverse);
void cmul_scalar(std::complex<double>* a, const std::complex<double>* b, std::size_t count);

/// Table getters for the vector TUs; null when the ISA is compiled out
/// (wrong architecture or -DLRD_DISABLE_SIMD). CPU support is checked
/// separately by the detector before the table goes live.
const FftKernels* avx2_fft_kernels() noexcept;
const FftKernels* neon_fft_kernels() noexcept;

}  // namespace detail

}  // namespace lrd::numerics::simd
