// Small dense linear algebra: just enough for the spectral fluid-queue
// solver (queueing/markov_fluid) — an (N+1)-state problem where N is the
// number of multiplexed on/off sources, so dimensions stay modest and a
// straightforward LU with partial pivoting is the right tool.
#pragma once

#include <cstddef>
#include <vector>

namespace lrd::numerics {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  Matrix transposed() const;

  friend Matrix operator*(const Matrix& a, const Matrix& b);
  std::vector<double> multiply(const std::vector<double>& x) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Solves A x = b by LU decomposition with partial pivoting.
/// Throws std::domain_error when A is (numerically) singular.
std::vector<double> solve_linear_system(Matrix a, std::vector<double> b);

/// Determinant via the same LU factorization.
double determinant(Matrix a);

/// Solves pi A = 0 with sum(pi) = 1 for an irreducible generator matrix A
/// (rows sum to zero): the stationary distribution of a CTMC.
std::vector<double> stationary_distribution(const Matrix& generator);

}  // namespace lrd::numerics
