#include "numerics/random.hpp"

#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>

namespace lrd::numerics {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Avoid the all-zero state (cannot happen with splitmix64, but cheap to
  // guarantee).
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

double Rng::uniform_open() noexcept {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return u;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  const double u1 = uniform_open();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::exponential(double rate) noexcept { return -std::log(uniform_open()) / rate; }

double Rng::pareto(double xm, double alpha) noexcept {
  return xm * std::pow(uniform_open(), -1.0 / alpha);
}

double Rng::lognormal(double mu_log, double sigma_log) noexcept {
  return std::exp(normal(mu_log, sigma_log));
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("AliasTable: empty weights");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (!(total > 0.0)) throw std::invalid_argument("AliasTable: zero total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::size_t> small, large;
  for (std::size_t i = 0; i < n; ++i) (scaled[i] < 1.0 ? small : large).push_back(i);

  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Rng& rng) const noexcept {
  const std::size_t i = static_cast<std::size_t>(rng.below(prob_.size()));
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace lrd::numerics
