// Tests for FluidModel, the correlation horizon, sweep drivers and the
// calibrated synthetic trace models.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "analysis/histogram.hpp"
#include "analysis/hurst.hpp"
#include "core/correlation_horizon.hpp"
#include "core/experiment.hpp"
#include "core/model.hpp"
#include "core/traces.hpp"
#include "numerics/special_functions.hpp"
#include "traffic/synthetic_traces.hpp"

namespace {

using namespace lrd;
using dist::Marginal;

constexpr double kInf = std::numeric_limits<double>::infinity();

Marginal test_marginal() {
  return Marginal({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
}

TEST(FluidModel, WiringMatchesPaperCalibration) {
  core::ModelConfig cfg;
  cfg.hurst = 0.83;
  cfg.mean_epoch = 0.080;
  cfg.cutoff = 10.0;
  cfg.utilization = 0.8;
  cfg.normalized_buffer = 1.0;
  core::FluidModel model(test_marginal(), cfg);

  EXPECT_NEAR(model.alpha(), 3.0 - 2.0 * 0.83, 1e-14);
  EXPECT_NEAR(model.theta(), 0.080 * (model.alpha() - 1.0), 1e-14);
  EXPECT_NEAR(model.service_rate(), 10.0 / 0.8, 1e-12);
  EXPECT_NEAR(model.buffer(), model.service_rate() * 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(model.epochs()->cutoff(), 10.0);
}

TEST(FluidModel, Validation) {
  core::ModelConfig cfg;
  cfg.normalized_buffer = 0.0;
  EXPECT_THROW(core::FluidModel(test_marginal(), cfg), std::invalid_argument);
  cfg = core::ModelConfig{};
  cfg.hurst = 1.0;
  EXPECT_THROW(core::FluidModel(test_marginal(), cfg), std::invalid_argument);
  cfg = core::ModelConfig{};
  cfg.utilization = 1.5;
  EXPECT_THROW(core::FluidModel(test_marginal(), cfg), std::invalid_argument);
}

TEST(FluidModel, SourceAndSolverShareParameters) {
  core::ModelConfig cfg;
  cfg.hurst = 0.9;
  cfg.mean_epoch = 0.02;
  cfg.utilization = 0.5;
  cfg.normalized_buffer = 0.5;
  core::FluidModel model(test_marginal(), cfg);
  auto src = model.source();
  EXPECT_DOUBLE_EQ(src.mean_rate(), 10.0);
  auto solver = model.solver();
  EXPECT_DOUBLE_EQ(solver.service_rate(), 20.0);
  EXPECT_DOUBLE_EQ(solver.buffer(), 10.0);
  EXPECT_NEAR(solver.utilization(), 0.5, 1e-14);
}

// ---- Correlation horizon --------------------------------------------------

TEST(CorrelationHorizon, MatchesEq26ByHand) {
  // T_CH = B mu / (2 sqrt(2) sigma_T sigma_l erfinv(p)).
  const double B = 4.0, mu = 0.05, sT = 0.1, sL = 3.0, p = 0.05;
  const double expected = B * mu / (2.0 * std::sqrt(2.0) * sT * sL * numerics::erf_inv(p));
  EXPECT_NEAR(core::correlation_horizon(B, mu, sT, sL, p), expected, 1e-12);
}

TEST(CorrelationHorizon, LinearInBuffer) {
  const double t1 = core::correlation_horizon(1.0, 0.05, 0.1, 3.0);
  const double t2 = core::correlation_horizon(2.0, 0.05, 0.1, 3.0);
  const double t8 = core::correlation_horizon(8.0, 0.05, 0.1, 3.0);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-12);
  EXPECT_NEAR(t8 / t1, 8.0, 1e-12);
}

TEST(CorrelationHorizon, SmallerNoResetProbabilityExtendsHorizon) {
  const double strict = core::correlation_horizon(1.0, 0.05, 0.1, 3.0, 0.01);
  const double loose = core::correlation_horizon(1.0, 0.05, 0.1, 3.0, 0.2);
  EXPECT_GT(strict, loose);
}

TEST(CorrelationHorizon, FromModelComponents) {
  Marginal m = test_marginal();
  dist::TruncatedPareto d(0.02, 1.4, 5.0);  // finite variance (truncated)
  const double ch = core::correlation_horizon(m, d, 2.0);
  EXPECT_GT(ch, 0.0);
  EXPECT_NEAR(ch,
              core::correlation_horizon(2.0, d.mean(), std::sqrt(d.variance()), m.stddev()),
              1e-12);
}

TEST(CorrelationHorizon, Validation) {
  EXPECT_THROW(core::correlation_horizon(0.0, 1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(core::correlation_horizon(1.0, 0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(core::correlation_horizon(1.0, 1.0, kInf, 1.0), std::invalid_argument);
  EXPECT_THROW(core::correlation_horizon(1.0, 1.0, 1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(core::correlation_horizon(1.0, 1.0, 1.0, 1.0, 1.0), std::invalid_argument);
}

TEST(EmpiricalCorrelationHorizon, FindsPlateauOnset) {
  const std::vector<double> cutoffs{0.1, 0.3, 1.0, 3.0, 10.0, 30.0};
  const std::vector<double> losses{1e-6, 1e-4, 5e-3, 9.5e-3, 9.9e-3, 1e-2};
  const double ch = core::empirical_correlation_horizon(cutoffs, losses, 0.10);
  EXPECT_DOUBLE_EQ(ch, 3.0);  // first loss >= 0.9 * plateau
}

TEST(EmpiricalCorrelationHorizon, NeverPlateausReturnsLast) {
  const std::vector<double> cutoffs{1.0, 2.0, 4.0};
  const std::vector<double> losses{0.1, 0.4, 1.0};
  EXPECT_DOUBLE_EQ(core::empirical_correlation_horizon(cutoffs, losses, 0.05), 4.0);
}

TEST(EmpiricalCorrelationHorizon, AllZeroLossIsTrivial) {
  EXPECT_DOUBLE_EQ(core::empirical_correlation_horizon({1.0, 2.0}, {0.0, 0.0}), 1.0);
}

TEST(EmpiricalCorrelationHorizon, Validation) {
  EXPECT_THROW(core::empirical_correlation_horizon({1.0}, {0.1}), std::invalid_argument);
  EXPECT_THROW(core::empirical_correlation_horizon({2.0, 1.0}, {0.1, 0.2}),
               std::invalid_argument);
  EXPECT_THROW(core::empirical_correlation_horizon({1.0, 2.0}, {0.1, 0.2}, 0.0),
               std::invalid_argument);
}

// ---- Sweep drivers ----------------------------------------------------------

core::ModelSweepConfig fast_sweep() {
  core::ModelSweepConfig cfg;
  cfg.hurst = 0.83;
  cfg.mean_epoch = 0.05;
  cfg.utilization = 0.8;
  cfg.solver.target_relative_gap = 0.2;
  cfg.solver.max_bins = 1 << 11;
  return cfg;
}

TEST(Sweeps, LossVsBufferAndCutoffMonotone) {
  auto t = core::loss_vs_buffer_and_cutoff(test_marginal(), fast_sweep(), {0.05, 0.2, 0.8},
                                           {0.1, 1.0, 10.0});
  ASSERT_EQ(t.rows.size(), 3u);
  ASSERT_EQ(t.cols.size(), 3u);
  // Loss decreases in buffer (down a column) and increases in cutoff
  // (across a row).
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t r = 1; r < 3; ++r) EXPECT_LE(t.at(r, c), t.at(r - 1, c) * 1.05 + 1e-12);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 1; c < 3; ++c) EXPECT_GE(t.at(r, c), t.at(r, c - 1) * 0.95 - 1e-12);
}

TEST(Sweeps, LossVsCutoffSaturates) {
  const std::vector<double> cutoffs{0.1, 1.0, 10.0, 100.0};
  auto losses = core::loss_vs_cutoff(test_marginal(), fast_sweep(), 0.25, cutoffs);
  ASSERT_EQ(losses.size(), 4u);
  for (std::size_t i = 1; i < losses.size(); ++i) EXPECT_GE(losses[i], losses[i - 1] * 0.9);
  // A correlation horizon exists: the step from 10 -> 100 is much smaller
  // than the step from 0.1 -> 1 (relative).
  const double early_gain = losses[1] / std::max(losses[0], 1e-300);
  const double late_gain = losses[3] / std::max(losses[2], 1e-300);
  EXPECT_GT(early_gain, late_gain);
}

TEST(Sweeps, ScalingDominatesLoss) {
  auto t = core::loss_vs_buffer_and_scaling(test_marginal(), fast_sweep(), {0.25}, {0.5, 1.0, 1.5});
  // Narrower marginal (a = 0.5) must lose far less than wider (a = 1.5).
  EXPECT_LT(t.at(0, 0), t.at(0, 2));
  EXPECT_LT(t.at(0, 0) * 5.0, t.at(0, 2));
}

TEST(Sweeps, SuperpositionReducesLoss) {
  auto t = core::loss_vs_hurst_and_superposition(test_marginal(), fast_sweep(), 0.25, {0.83},
                                                 {1, 4, 8});
  EXPECT_GT(t.at(0, 0), t.at(0, 1));
  EXPECT_GE(t.at(0, 1), t.at(0, 2) * 0.95 - 1e-15);
}

TEST(Sweeps, HurstMattersLessThanScaling) {
  // The paper's headline comparison (Figs. 10/12): across the H range the
  // loss moves much less than across the scaling range.
  auto t = core::loss_vs_hurst_and_scaling(test_marginal(), fast_sweep(), 0.25, {0.6, 0.9},
                                           {0.5, 1.5});
  const double hurst_ratio = t.at(1, 1) / std::max(t.at(0, 1), 1e-300);
  const double scale_ratio = t.at(1, 1) / std::max(t.at(1, 0), 1e-300);
  EXPECT_GT(scale_ratio, hurst_ratio);
}

TEST(SweepTable, PrintFormats) {
  core::SweepTable t;
  t.title = "demo";
  t.row_label = "b";
  t.col_label = "tc";
  t.rows = {0.5, kInf};
  t.cols = {1.0};
  t.values = {{1e-3}, {2e-3}};
  std::ostringstream human, csv;
  t.print(human);
  t.print_csv(csv);
  EXPECT_NE(human.str().find("demo"), std::string::npos);
  EXPECT_NE(human.str().find("1.000e-03"), std::string::npos);
  EXPECT_NE(human.str().find("inf"), std::string::npos);
  EXPECT_NE(csv.str().find("b\\tc,1"), std::string::npos);
  EXPECT_NE(csv.str().find("0.002"), std::string::npos);
}

TEST(ShuffleSweep, LossGrowsWithCutoffBlock) {
  auto trace = traffic::mtv_trace().head(1 << 15);
  auto t = core::shuffle_loss_vs_buffer_and_cutoff(trace, 0.8, {0.1, 0.5}, {0.1, 10.0, kInf});
  // Larger cutoff (longer preserved correlation) => more loss, and the
  // unshuffled column dominates the heavily shuffled one.
  for (std::size_t r = 0; r < 2; ++r) EXPECT_GE(t.at(r, 2), t.at(r, 0) * 0.9 - 1e-12);
  // Bigger buffer cannot increase loss.
  for (std::size_t c = 0; c < 3; ++c) EXPECT_LE(t.at(1, c), t.at(0, c) + 1e-12);
}

// ---- Synthetic traces --------------------------------------------------------

TEST(SyntheticTraces, MtvMatchesReportedStatistics) {
  auto trace = traffic::mtv_trace();
  EXPECT_EQ(trace.size(), 107892u);
  EXPECT_NEAR(trace.bin_seconds(), 1.0 / 29.97, 1e-12);
  EXPECT_NEAR(trace.mean(), 9.5222, 0.6);  // LRD sample-mean wander
  const double cov = std::sqrt(trace.variance()) / trace.mean();
  EXPECT_NEAR(cov, 0.25, 0.05);
  const double h = analysis::hurst_wavelet(trace).hurst;
  EXPECT_NEAR(h, 0.83, 0.08);
}

TEST(SyntheticTraces, BellcoreMatchesSpec) {
  auto trace = traffic::bellcore_trace();
  EXPECT_EQ(trace.size(), std::size_t{1} << 18);
  EXPECT_DOUBLE_EQ(trace.bin_seconds(), 0.01);
  const double h = analysis::hurst_wavelet(trace).hurst;
  EXPECT_NEAR(h, 0.90, 0.08);
  const double cov = std::sqrt(trace.variance()) / trace.mean();
  EXPECT_GT(cov, 0.8);  // distinctly burstier than the video trace
}

TEST(SyntheticTraces, Deterministic) {
  auto a = traffic::mtv_trace();
  auto b = traffic::mtv_trace();
  for (std::size_t i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(SyntheticTraces, Validation) {
  traffic::SyntheticTraceSpec bad;
  bad.mean_rate = 0.0;
  EXPECT_THROW(traffic::generate_synthetic_trace(bad), std::invalid_argument);
  bad = traffic::SyntheticTraceSpec{};
  bad.cov = 0.0;
  EXPECT_THROW(traffic::generate_synthetic_trace(bad), std::invalid_argument);
}

TEST(TraceModels, CalibratedBundles) {
  auto mtv = core::mtv_model();
  EXPECT_STREQ(mtv.name, "MTV");
  EXPECT_DOUBLE_EQ(mtv.hurst, 0.83);
  EXPECT_DOUBLE_EQ(mtv.utilization, 0.8);
  EXPECT_LE(mtv.marginal.size(), 50u);
  EXPECT_NEAR(mtv.marginal.mean(), mtv.trace.mean(), 1e-6 * mtv.trace.mean());

  auto bc = core::bellcore_model();
  EXPECT_STREQ(bc.name, "Bellcore");
  EXPECT_DOUBLE_EQ(bc.hurst, 0.90);
  EXPECT_DOUBLE_EQ(bc.utilization, 0.4);
  // The Bellcore marginal is wider (relative to its mean) than the MTV one.
  EXPECT_GT(bc.marginal.stddev() / bc.marginal.mean(),
            mtv.marginal.stddev() / mtv.marginal.mean());
}

TEST(TraceModels, MeanEpochRoughlyMatchesTraceRunLength) {
  // The paper reads the mean epoch off the trace's same-histogram-bin run
  // length; our canonical value must at least be the right order.
  auto mtv = core::mtv_model();
  const double measured = analysis::mean_epoch_seconds(mtv.trace, 50);
  EXPECT_GT(measured, mtv.mean_epoch / 4.0);
  EXPECT_LT(measured, mtv.mean_epoch * 4.0);
}

}  // namespace
