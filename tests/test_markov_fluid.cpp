// Tests for the Anick-Mitra-Sondhi spectral fluid-queue solver, including
// the exact cross-validation against the paper's discretized solver: a
// renewal source with exponential epochs and a {0, r} marginal is
// path-identical to a single-source on/off CTMC.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dist/simple_epochs.hpp"
#include "queueing/markov_fluid.hpp"
#include "queueing/solver.hpp"

namespace {

using namespace lrd;
using queueing::MarkovFluidQueue;
using queueing::OnOffFluidSpec;

OnOffFluidSpec basic_spec() {
  OnOffFluidSpec spec;
  spec.sources = 4;
  spec.rate_on = 3.0;
  spec.lambda_on = 2.0;
  spec.lambda_off = 3.0;  // p_on = 0.4, mean rate 4.8
  // 6.2 (not 6.0) so no state has drift exactly zero (i * 3 != c).
  spec.service = 6.2;     // utilization ~0.774
  return spec;
}

TEST(MarkovFluid, Validation) {
  OnOffFluidSpec bad = basic_spec();
  bad.sources = 0;
  EXPECT_THROW(MarkovFluidQueue{bad}, std::invalid_argument);
  bad = basic_spec();
  bad.rate_on = 0.0;
  EXPECT_THROW(MarkovFluidQueue{bad}, std::invalid_argument);
  bad = basic_spec();
  bad.service = 6.2;
  bad.rate_on = 3.1;  // state 2: 2 * 3.1 == 6.2 == c -> zero drift
  EXPECT_THROW(MarkovFluidQueue{bad}, std::invalid_argument);
}

TEST(MarkovFluid, SpecAccessors) {
  const auto spec = basic_spec();
  EXPECT_NEAR(spec.p_on(), 0.4, 1e-15);
  EXPECT_NEAR(spec.mean_rate(), 4.8, 1e-12);
  EXPECT_NEAR(spec.utilization(), 4.8 / 6.2, 1e-12);
}

TEST(MarkovFluid, SpectrumStructure) {
  MarkovFluidQueue q(basic_spec());
  const auto& z = q.eigenvalues();
  ASSERT_EQ(z.size(), 5u);
  // Sorted, exactly one zero eigenvalue.
  int zeros = 0, negatives = 0, positives = 0;
  for (std::size_t k = 0; k < z.size(); ++k) {
    if (k > 0) {
      EXPECT_GE(z[k], z[k - 1]);
    }
    if (z[k] == 0.0) {
      ++zeros;
    } else if (z[k] < 0.0) {
      ++negatives;
    } else {
      ++positives;
    }
  }
  EXPECT_EQ(zeros, 1);
  // #negative eigenvalues == #up-drift states (i * 3 > 6.2 -> i in {3, 4}).
  EXPECT_EQ(negatives, 2);
  EXPECT_EQ(positives, 2);
}

TEST(MarkovFluid, StateProbabilitiesAreBinomial) {
  MarkovFluidQueue q(basic_spec());
  const auto& p = q.state_probabilities();
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(p[0], std::pow(0.6, 4), 1e-12);
  EXPECT_NEAR(p[4], std::pow(0.4, 4), 1e-12);
}

TEST(MarkovFluid, OverflowProbabilityShape) {
  MarkovFluidQueue q(basic_spec());
  double prev = q.overflow_probability(0.0);
  EXPECT_LE(prev, 1.0);
  EXPECT_GT(prev, 0.0);
  for (double x : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double g = q.overflow_probability(x);
    EXPECT_LE(g, prev + 1e-12) << x;
    EXPECT_GE(g, 0.0);
    prev = g;
  }
  // Asymptotically exponential with the dominant (least negative) rate.
  const double g8 = q.overflow_probability(8.0);
  const double g10 = q.overflow_probability(10.0);
  double dominant = -1e300;
  for (double z : q.eigenvalues())
    if (z < 0.0) dominant = std::max(dominant, z);
  EXPECT_NEAR(std::log(g10 / g8) / 2.0, dominant, 0.02);
}

TEST(MarkovFluid, SingleSourceClosedFormDecayRate) {
  // N = 1: the nonzero eigenvalue is lambda_on / c - lambda_off / (r - c).
  OnOffFluidSpec s;
  s.sources = 1;
  s.rate_on = 5.0;
  s.lambda_on = 1.0;
  s.lambda_off = 4.0;  // p_on = 0.2, mean 1.0
  s.service = 2.0;     // utilization 0.5
  MarkovFluidQueue q(s);
  const double expected = s.lambda_on / s.service - s.lambda_off / (s.rate_on - s.service);
  ASSERT_EQ(q.eigenvalues().size(), 2u);
  EXPECT_NEAR(q.eigenvalues()[0], expected, 1e-9);
  EXPECT_DOUBLE_EQ(q.eigenvalues()[1], 0.0);
}

TEST(MarkovFluid, InfiniteBufferMatchesSimulationTail) {
  const auto spec = basic_spec();
  MarkovFluidQueue q(spec);
  // Big-buffer simulation approximates the infinite queue.
  const auto sim = queueing::simulate_markov_fluid(spec, 500.0, 2000000, 99);
  EXPECT_NEAR(q.mean_queue(), sim.mean_queue, 0.15 * q.mean_queue());
}

class MarkovFluidFinite : public ::testing::TestWithParam<double> {};

TEST_P(MarkovFluidFinite, LossMatchesSimulation) {
  const double buffer = GetParam();
  const auto spec = basic_spec();
  MarkovFluidQueue q(spec);
  const auto exact = q.finite_buffer(buffer);
  // 16M transitions: at B = 8 the loss (~1.5e-4) comes from rare
  // all-sources-on excursions and needs a long run to resolve.
  const auto sim = queueing::simulate_markov_fluid(spec, buffer, 16000000, 1234);
  EXPECT_NEAR(exact.loss_rate, sim.loss_rate, 0.08 * exact.loss_rate + 1e-6) << buffer;
  EXPECT_NEAR(exact.mean_queue, sim.mean_queue, 0.08 * exact.mean_queue + 1e-3) << buffer;
}

INSTANTIATE_TEST_SUITE_P(Buffers, MarkovFluidFinite, ::testing::Values(0.25, 1.0, 4.0, 8.0));

TEST(MarkovFluid, FiniteBufferStructure) {
  MarkovFluidQueue q(basic_spec());
  const auto r = q.finite_buffer(2.0);
  EXPECT_GT(r.loss_rate, 0.0);
  EXPECT_LT(r.loss_rate, 1.0);
  EXPECT_GT(r.mean_queue, 0.0);
  EXPECT_LT(r.mean_queue, 2.0);
  // Atoms live on the right side of the drift split.
  const auto& p = q.state_probabilities();
  for (std::size_t i = 0; i < r.full_atoms.size(); ++i) {
    EXPECT_GE(r.full_atoms[i], 0.0);
    EXPECT_LE(r.full_atoms[i], p[i] + 1e-9);
    EXPECT_GE(r.empty_atoms[i], 0.0);
    EXPECT_LE(r.empty_atoms[i], p[i] + 1e-9);
  }
  // Up-drift states cannot have empty atoms and vice versa.
  EXPECT_DOUBLE_EQ(r.empty_atoms[4], 0.0);
  EXPECT_DOUBLE_EQ(r.full_atoms[0], 0.0);
}

TEST(MarkovFluid, LossDecreasesWithBuffer) {
  MarkovFluidQueue q(basic_spec());
  double prev = 1.0;
  for (double b : {0.1, 0.5, 2.0, 8.0, 32.0}) {
    const double l = q.finite_buffer(b).loss_rate;
    EXPECT_LT(l, prev) << b;
    prev = l;
  }
  EXPECT_LT(prev, 1e-3);  // large buffers kill the loss for SRD input
}

TEST(MarkovFluid, OverloadedFiniteBufferLosesExcess) {
  OnOffFluidSpec s = basic_spec();
  s.service = 4.0;  // utilization 1.2: loss >= 1 - 1/1.2
  MarkovFluidQueue q(s);
  const auto r = q.finite_buffer(1.0);
  EXPECT_GT(r.loss_rate, 1.0 - 1.0 / 1.2 - 1e-9);
  EXPECT_THROW(q.overflow_probability(1.0), std::domain_error);
}

// ---- The exact cross-validation with the paper's solver -------------------

TEST(MarkovFluid, RenewalSolverAgreesExactlyForSingleOnOffSource) {
  // Renewal model: exponential epochs of rate mu, rate drawn i.i.d. from
  // {0, r} with Pr{r} = p. Self-loops do not change the law of the fluid
  // path, so this IS the CTMC on/off source with lambda_on = mu p,
  // lambda_off = mu (1 - p).
  const double mu = 8.0, p = 0.35, r = 9.0, c = 5.0, B = 3.0;

  OnOffFluidSpec spec;
  spec.sources = 1;
  spec.rate_on = r;
  spec.lambda_on = mu * p;
  spec.lambda_off = mu * (1.0 - p);
  spec.service = c;
  const double exact = MarkovFluidQueue(spec).finite_buffer(B).loss_rate;

  dist::Marginal marginal({0.0, r}, {1.0 - p, p});
  auto epochs = std::make_shared<const dist::ExponentialEpoch>(mu);
  queueing::FluidQueueSolver solver(marginal, epochs, c, B);
  queueing::SolverConfig cfg;
  cfg.target_relative_gap = 0.02;
  cfg.max_bins = 1 << 13;
  const auto bracket = solver.solve(cfg);

  ASSERT_TRUE(bracket.converged);
  EXPECT_LE(bracket.loss.lower, exact * (1.0 + 1e-6));
  EXPECT_GE(bracket.loss.upper, exact * (1.0 - 1e-6));
}

}  // namespace
