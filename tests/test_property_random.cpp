// Randomized property tests: for a fleet of seeded random model
// instances, the structural invariants of the solver and its inputs must
// hold — bracket validity, conservation, monotonicity, pmf properness.
// These catch interaction bugs that the hand-picked unit fixtures cannot.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "dist/marginal.hpp"
#include "dist/simple_epochs.hpp"
#include "dist/truncated_pareto.hpp"
#include "dist/gamma_epoch.hpp"
#include "dist/mixture_epoch.hpp"
#include "dist/weibull_epoch.hpp"
#include "numerics/random.hpp"
#include "queueing/fluid_queue_sim.hpp"
#include "queueing/occupancy.hpp"
#include "queueing/solver.hpp"

namespace {

using namespace lrd;

struct RandomInstance {
  dist::Marginal marginal;
  dist::EpochPtr epochs;
  double service;
  double buffer;
};

RandomInstance make_instance(std::uint64_t seed) {
  numerics::Rng rng(seed);

  // Random marginal: 2..12 states, rates in (0, 20), Dirichlet-ish probs.
  const std::size_t states = 2 + static_cast<std::size_t>(rng.below(11));
  std::vector<double> rates(states), probs(states);
  for (std::size_t i = 0; i < states; ++i) {
    rates[i] = rng.uniform(0.0, 20.0);
    probs[i] = rng.exponential(1.0);
  }
  dist::Marginal marginal(std::move(rates), std::move(probs));

  // Random epoch law from the full family.
  dist::EpochPtr epochs;
  switch (rng.below(6)) {
    case 0:
      epochs = std::make_shared<const dist::TruncatedPareto>(
          rng.uniform(0.005, 0.2), rng.uniform(1.1, 1.9), rng.uniform(0.5, 50.0));
      break;
    case 1:
      epochs = std::make_shared<const dist::ExponentialEpoch>(rng.uniform(1.0, 50.0));
      break;
    case 2:
      epochs = std::make_shared<const dist::UniformEpoch>(0.0, rng.uniform(0.05, 0.5));
      break;
    case 3:
      epochs = std::make_shared<const dist::GammaEpoch>(rng.uniform(0.4, 4.0),
                                                        rng.uniform(0.01, 0.2));
      break;
    case 4: {
      std::vector<dist::MixtureEpoch::Component> comps;
      comps.push_back({rng.uniform(0.2, 0.8),
                       std::make_shared<const dist::ExponentialEpoch>(rng.uniform(5.0, 50.0))});
      comps.push_back({1.0, std::make_shared<const dist::TruncatedPareto>(
                                rng.uniform(0.005, 0.1), rng.uniform(1.2, 1.8),
                                rng.uniform(1.0, 20.0))});
      epochs = std::make_shared<const dist::MixtureEpoch>(std::move(comps));
      break;
    }
    default:
      epochs = std::make_shared<const dist::WeibullEpoch>(rng.uniform(0.01, 0.2),
                                                          rng.uniform(0.5, 2.0));
      break;
  }

  // Utilization in (0.3, 0.95); avoid rates exactly equal to c.
  double service = marginal.mean() / rng.uniform(0.3, 0.95);
  for (double r : marginal.rates())
    if (std::abs(r - service) < 1e-9) service += 1e-6;
  const double buffer = rng.uniform(0.05, 2.0) * service;
  return RandomInstance{std::move(marginal), std::move(epochs), service, buffer};
}

class RandomModels : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomModels, IncrementPmfsAreProperAndOrdered) {
  const auto inst = make_instance(GetParam());
  queueing::FluidQueueSolver s(inst.marginal, inst.epochs, inst.service, inst.buffer);
  for (std::size_t bins : {32u, 128u}) {
    const auto wl = s.increment_pmf_lower(bins);
    const auto wh = s.increment_pmf_upper(bins);
    EXPECT_NEAR(std::accumulate(wl.begin(), wl.end(), 0.0), 1.0, 1e-10);
    EXPECT_NEAR(std::accumulate(wh.begin(), wh.end(), 0.0), 1.0, 1e-10);
    double tail_l = 0.0, tail_h = 0.0;
    for (std::size_t k = wl.size(); k-- > 0;) {
      tail_l += wl[k];
      tail_h += wh[k];
      ASSERT_GE(tail_h, tail_l - 1e-10);
    }
  }
}

TEST_P(RandomModels, SolverBracketIsValidAndConsistent) {
  const auto inst = make_instance(GetParam());
  queueing::FluidQueueSolver s(inst.marginal, inst.epochs, inst.service, inst.buffer);
  queueing::SolverConfig cfg;
  cfg.max_bins = 1 << 11;
  const auto r = s.solve(cfg);
  EXPECT_LE(r.loss.lower, r.loss.upper + 1e-15);
  EXPECT_GE(r.loss.lower, 0.0);
  EXPECT_LE(r.loss.upper, 1.0 + 1e-9);
  EXPECT_LE(r.mean_queue_lower, r.mean_queue_upper + 1e-9);
  EXPECT_GE(r.mean_queue_lower, -1e-12);
  EXPECT_LE(r.mean_queue_upper, inst.buffer * (1.0 + 1e-9));
  // Occupancy pmfs are proper.
  EXPECT_NEAR(std::accumulate(r.occupancy_lower.begin(), r.occupancy_lower.end(), 0.0), 1.0,
              1e-6);
  EXPECT_NEAR(std::accumulate(r.occupancy_upper.begin(), r.occupancy_upper.end(), 0.0), 1.0,
              1e-6);
  // Zero-loss convention is self-consistent.
  if (r.zero_loss) {
    EXPECT_LT(r.loss.upper, 1e-10);
  }
}

TEST_P(RandomModels, BoundsTightenWithIterationsEverywhere) {
  const auto inst = make_instance(GetParam());
  queueing::FluidQueueSolver s(inst.marginal, inst.epochs, inst.service, inst.buffer);
  const auto early = s.iterate_fixed(64, 6);
  const auto later = s.iterate_fixed(64, 24);
  EXPECT_GE(later.loss.lower, early.loss.lower - 1e-13);
  EXPECT_LE(later.loss.upper, early.loss.upper + 1e-13);
}

TEST_P(RandomModels, SimulationAgreesWithBracket) {
  const auto inst = make_instance(GetParam());
  queueing::FluidQueueSolver s(inst.marginal, inst.epochs, inst.service, inst.buffer);
  queueing::SolverConfig cfg;
  cfg.target_relative_gap = 0.05;
  cfg.max_bins = 1 << 12;
  const auto r = s.solve(cfg);

  queueing::FluidSimConfig sim_cfg;
  sim_cfg.epochs = 1 << 20;
  sim_cfg.seed = GetParam() ^ 0xabcdef;
  const auto sim = queueing::simulate_fluid_queue(inst.marginal, *inst.epochs, inst.service,
                                                  inst.buffer, sim_cfg);
  const double slack = 5.0 * sim.loss_rate_stderr + 0.05 * r.loss.upper + 1e-9;
  EXPECT_LE(sim.loss_rate, r.loss.upper + slack);
  // The lower-bound check only makes sense when losses are frequent
  // enough for a ~1M-epoch simulation to observe them reliably.
  if (r.loss.upper > 1e-4) {
    EXPECT_GE(sim.loss_rate, r.loss.lower - slack);
  }
}

TEST_P(RandomModels, OverflowTailIsCoherent) {
  const auto inst = make_instance(GetParam());
  queueing::FluidQueueSolver s(inst.marginal, inst.epochs, inst.service, inst.buffer);
  queueing::SolverConfig cfg;
  cfg.max_bins = 1 << 11;
  const auto r = s.solve(cfg);
  const auto tail = queueing::occupancy_tail(r, inst.buffer);
  for (std::size_t j = 1; j < tail.lower.size(); ++j) {
    ASSERT_LE(tail.lower[j], tail.lower[j - 1] + 1e-12);
    ASSERT_LE(tail.upper[j], tail.upper[j - 1] + 1e-12);
    ASSERT_LE(tail.lower[j], tail.upper[j] + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModels,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110, 121, 132));

}  // namespace
