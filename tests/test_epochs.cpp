// Tests for the SRD epoch distributions and the mixture — including the
// generic consistency property every EpochDistribution must satisfy:
// excess_mean(u) = integral_u^inf ccdf(t) dt and mean == excess_mean(0).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "dist/mixture_epoch.hpp"
#include "dist/simple_epochs.hpp"
#include "dist/truncated_pareto.hpp"
#include "numerics/random.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lrd::dist;
using lrd::testing::integrate_tail;
using lrd::testing::simpson;

TEST(ExponentialEpoch, Basics) {
  ExponentialEpoch d(2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.5);
  EXPECT_DOUBLE_EQ(d.variance(), 0.25);
  EXPECT_NEAR(d.ccdf_open(1.0), std::exp(-2.0), 1e-15);
  EXPECT_DOUBLE_EQ(d.ccdf_open(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.ccdf_open(-1.0), 1.0);
  EXPECT_NEAR(d.excess_mean(1.0), std::exp(-2.0) / 2.0, 1e-15);
  EXPECT_TRUE(std::isinf(d.max_support()));
  EXPECT_THROW(ExponentialEpoch(0.0), std::invalid_argument);
}

TEST(ExponentialEpoch, MemorylessResidual) {
  // The residual-life ccdf of an exponential equals its own ccdf.
  ExponentialEpoch d(3.0);
  for (double t : {0.1, 0.5, 2.0}) EXPECT_NEAR(d.residual_ccdf(t), d.ccdf_open(t), 1e-14);
}

TEST(DeterministicEpoch, Basics) {
  DeterministicEpoch d(2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.ccdf_open(1.9), 1.0);
  EXPECT_DOUBLE_EQ(d.ccdf_open(2.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ccdf_closed(2.0), 1.0);  // atom at 2
  EXPECT_DOUBLE_EQ(d.ccdf_closed(2.1), 0.0);
  EXPECT_DOUBLE_EQ(d.excess_mean(0.5), 1.5);
  EXPECT_DOUBLE_EQ(d.excess_mean(3.0), 0.0);
  lrd::numerics::Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 2.0);
  EXPECT_THROW(DeterministicEpoch(0.0), std::invalid_argument);
}

TEST(DeterministicEpoch, ResidualIsLinear) {
  DeterministicEpoch d(4.0);
  EXPECT_NEAR(d.residual_ccdf(1.0), 0.75, 1e-15);
  EXPECT_NEAR(d.residual_ccdf(3.0), 0.25, 1e-15);
}

TEST(UniformEpoch, Basics) {
  UniformEpoch d(1.0, 3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_NEAR(d.variance(), 4.0 / 12.0, 1e-15);
  EXPECT_DOUBLE_EQ(d.ccdf_open(0.5), 1.0);
  EXPECT_DOUBLE_EQ(d.ccdf_open(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.ccdf_open(3.0), 0.0);
  EXPECT_DOUBLE_EQ(d.max_support(), 3.0);
  EXPECT_THROW(UniformEpoch(3.0, 3.0), std::invalid_argument);
  EXPECT_THROW(UniformEpoch(-1.0, 3.0), std::invalid_argument);
}

TEST(UniformEpoch, ExcessMeanBranches) {
  UniformEpoch d(1.0, 3.0);
  EXPECT_NEAR(d.excess_mean(0.0), 2.0, 1e-15);                  // u below support
  EXPECT_NEAR(d.excess_mean(0.5), 1.5, 1e-15);                  // mean - u
  EXPECT_NEAR(d.excess_mean(2.0), 1.0 / 4.0, 1e-15);            // (hi-u)^2/(2(hi-lo))
  EXPECT_DOUBLE_EQ(d.excess_mean(3.0), 0.0);
  EXPECT_DOUBLE_EQ(d.excess_mean(10.0), 0.0);
}

// Generic property: excess_mean must equal the integral of the ccdf for
// EVERY epoch distribution (the solver and the covariance rely on it).
class EpochConsistency : public ::testing::TestWithParam<int> {
 protected:
  static EpochPtr make(int which) {
    switch (which) {
      case 0: return std::make_shared<ExponentialEpoch>(1.7);
      case 1: return std::make_shared<DeterministicEpoch>(1.3);
      case 2: return std::make_shared<UniformEpoch>(0.2, 2.8);
      case 3: return std::make_shared<TruncatedPareto>(0.5, 1.6, 25.0);
      default: {
        std::vector<MixtureEpoch::Component> comps;
        comps.push_back({0.3, std::make_shared<ExponentialEpoch>(4.0)});
        comps.push_back({0.7, std::make_shared<TruncatedPareto>(0.3, 1.5, 10.0)});
        return std::make_shared<MixtureEpoch>(std::move(comps));
      }
    }
  }
};

TEST_P(EpochConsistency, ExcessMeanIsIntegralOfCcdf) {
  auto d = make(GetParam());
  for (double u : {0.0, 0.1, 0.7, 2.0, 5.0}) {
    const double numeric = std::isinf(d->max_support())
                               ? integrate_tail([&](double t) { return d->ccdf_open(t); }, u, 1.0)
                               : simpson([&](double t) { return d->ccdf_open(t); }, u,
                                         d->max_support(), 100000);
    // The tolerance must absorb quadrature error across ccdf jump
    // discontinuities (the truncated Pareto's atom).
    EXPECT_NEAR(d->excess_mean(u), numeric, 2e-3 * (numeric + 1e-9)) << "u = " << u;
  }
}

TEST_P(EpochConsistency, MeanIsExcessMeanAtZero) {
  auto d = make(GetParam());
  EXPECT_NEAR(d->mean(), d->excess_mean(0.0), 1e-12 * d->mean());
}

TEST_P(EpochConsistency, CcdfMonotoneAndBounded) {
  auto d = make(GetParam());
  double prev = 1.0;
  const double hi = std::isinf(d->max_support()) ? 20.0 : d->max_support() * 1.1;
  for (double t = 0.0; t <= hi; t += hi / 200.0) {
    const double c = d->ccdf_open(t);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, prev + 1e-12);
    EXPECT_GE(d->ccdf_closed(t), c - 1e-15);  // closed >= open everywhere
    prev = c;
  }
}

TEST_P(EpochConsistency, SampleMeanMatches) {
  auto d = make(GetParam());
  lrd::numerics::Rng rng(GetParam() + 100);
  const int n = 300000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += d->sample(rng);
  EXPECT_NEAR(s / n, d->mean(), 0.05 * d->mean());
}

TEST_P(EpochConsistency, ResidualCcdfIsOneAtZeroAndDecreasing) {
  auto d = make(GetParam());
  EXPECT_DOUBLE_EQ(d->residual_ccdf(0.0), 1.0);
  double prev = 1.0;
  for (double t = 0.05; t < 5.0; t += 0.05) {
    const double r = d->residual_ccdf(t);
    EXPECT_LE(r, prev + 1e-12);
    EXPECT_GE(r, 0.0);
    prev = r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEpochs, EpochConsistency, ::testing::Range(0, 5));

TEST(MixtureEpoch, ValidatesInput) {
  EXPECT_THROW(MixtureEpoch({}), std::invalid_argument);
  std::vector<MixtureEpoch::Component> bad;
  bad.push_back({0.0, std::make_shared<ExponentialEpoch>(1.0)});
  EXPECT_THROW(MixtureEpoch(std::move(bad)), std::invalid_argument);
  std::vector<MixtureEpoch::Component> null_comp;
  null_comp.push_back({1.0, nullptr});
  EXPECT_THROW(MixtureEpoch(std::move(null_comp)), std::invalid_argument);
}

TEST(MixtureEpoch, WeightsAreNormalized) {
  std::vector<MixtureEpoch::Component> comps;
  comps.push_back({2.0, std::make_shared<ExponentialEpoch>(1.0)});
  comps.push_back({6.0, std::make_shared<ExponentialEpoch>(2.0)});
  MixtureEpoch mix(std::move(comps));
  EXPECT_NEAR(mix.components()[0].weight, 0.25, 1e-15);
  EXPECT_NEAR(mix.components()[1].weight, 0.75, 1e-15);
  // Mean: 0.25 * 1 + 0.75 * 0.5.
  EXPECT_NEAR(mix.mean(), 0.625, 1e-15);
}

TEST(MixtureEpoch, VarianceLawOfTotalVariance) {
  std::vector<MixtureEpoch::Component> comps;
  comps.push_back({0.5, std::make_shared<DeterministicEpoch>(1.0)});
  comps.push_back({0.5, std::make_shared<DeterministicEpoch>(3.0)});
  MixtureEpoch mix(std::move(comps));
  EXPECT_DOUBLE_EQ(mix.mean(), 2.0);
  EXPECT_DOUBLE_EQ(mix.variance(), 1.0);  // pure between-component variance
}

TEST(MixtureEpoch, MaxSupportIsComponentMax) {
  std::vector<MixtureEpoch::Component> comps;
  comps.push_back({0.5, std::make_shared<DeterministicEpoch>(1.0)});
  comps.push_back({0.5, std::make_shared<TruncatedPareto>(1.0, 1.5, 7.0)});
  MixtureEpoch mix(std::move(comps));
  EXPECT_DOUBLE_EQ(mix.max_support(), 7.0);
}

}  // namespace
