// Golden regression tests: pin the key deterministic quantities of the
// reproduction (fixed seeds everywhere) so refactors that silently change
// results are caught immediately. Tolerances are loose enough to admit
// legitimate cross-platform floating-point drift but tight enough to
// flag any algorithmic change.
#include <gtest/gtest.h>

#include <memory>

#include <cmath>

#include "core/correlation_horizon.hpp"
#include "core/experiment.hpp"
#include "core/model.hpp"
#include "core/traces.hpp"
#include "dist/simple_epochs.hpp"
#include "dist/truncated_pareto.hpp"
#include "queueing/markov_fluid.hpp"
#include "queueing/solver.hpp"

namespace {

using namespace lrd;

TEST(Golden, MtvTraceStatistics) {
  const auto mtv = core::mtv_model();
  EXPECT_EQ(mtv.trace.size(), 107892u);
  EXPECT_NEAR(mtv.trace.mean(), 9.5810, 1e-3);
  EXPECT_NEAR(mtv.trace.variance(), 5.6287, 0.05);
  EXPECT_NEAR(mtv.marginal.mean(), mtv.trace.mean(), 1e-6);
}

TEST(Golden, BellcoreTraceStatistics) {
  const auto bc = core::bellcore_model();
  EXPECT_EQ(bc.trace.size(), std::size_t{1} << 18);
  const double cov = bc.marginal.stddev() / bc.marginal.mean();
  EXPECT_NEAR(cov, 1.08, 0.03);
}

TEST(Golden, Fig4CornerValues) {
  // Two cells of the Fig. 4 surface (MTV, util 0.8), solved at the
  // figure-grade 20% bracket. The midpoint is deterministic.
  const auto mtv = core::mtv_model();
  core::ModelSweepConfig cfg;
  cfg.hurst = mtv.hurst;
  cfg.mean_epoch = mtv.mean_epoch;
  cfg.utilization = mtv.utilization;
  cfg.solver.target_relative_gap = 0.2;
  cfg.solver.max_bins = 1 << 12;
  const auto t = core::loss_vs_buffer_and_cutoff(mtv.marginal, cfg, {0.01, 0.2}, {0.1, 10.0});
  EXPECT_NEAR(t.at(0, 0), 9.275e-3, 0.15 * 9.275e-3);
  EXPECT_NEAR(t.at(0, 1), 1.802e-2, 0.15 * 1.802e-2);
  EXPECT_NEAR(t.at(1, 1), 5.494e-3, 0.15 * 5.494e-3);
}

TEST(Golden, ExactRandomWalkLoss) {
  // Fully exact fixture (no randomness, no discretization error).
  dist::Marginal m({0.0, 3.0}, {2.0 / 3.0, 1.0 / 3.0});
  auto d = std::make_shared<const dist::DeterministicEpoch>(1.0);
  queueing::FluidQueueSolver s(m, d, 2.0, 1.0);
  const auto r = s.solve();
  EXPECT_NEAR(r.loss_estimate(), 1.0 / 9.0, 1e-9);
}

TEST(Golden, AmsSingleSourceLoss) {
  // Spectral solver, fully deterministic.
  queueing::OnOffFluidSpec spec;
  spec.sources = 1;
  spec.rate_on = 9.0;
  spec.lambda_on = 2.8;
  spec.lambda_off = 5.2;
  spec.service = 5.0;
  const double loss = queueing::MarkovFluidQueue(spec).finite_buffer(3.0).loss_rate;
  EXPECT_NEAR(loss, 0.0288258, 5e-4) << "pin against build used for EXPERIMENTS.md";
  // Invariant re-derivable by hand: overload fraction bound.
  EXPECT_LT(loss, 1.0);
  EXPECT_GT(loss, 0.0);
}

TEST(Golden, Eq26Value) {
  // Closed form, no tolerance drift expected beyond double rounding.
  const double ch = core::correlation_horizon(4.0, 0.05, 0.1, 3.0, 0.05);
  EXPECT_NEAR(ch, 4.0 * 0.05 / (2.0 * std::sqrt(2.0) * 0.1 * 3.0 * 0.04434038746), 1e-6);
}

}  // namespace
