// SIMD/scalar parity for the LRD_SIMD kernel tables (numerics/simd.hpp).
//
// The dispatch contract: every kernel table computes the same fused
// radix-2^2 butterflies in the same order, so forcing a different table
// through the test seam must not move any spectrum, round-trip, or
// convolution result by more than FMA-contraction noise. The suite pins
// that at 1e-12 across power-of-two sizes 8..16384 on both dispatch
// paths; on hardware without a vector ISA the cross-table checks skip
// and the scalar path is still exercised in full.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <string>
#include <vector>

#include "numerics/convolution.hpp"
#include "numerics/fft_plan.hpp"
#include "numerics/random.hpp"
#include "numerics/simd.hpp"

namespace {

using namespace lrd::numerics;
using cd = std::complex<double>;

/// Restores runtime detection no matter how a test exits.
struct KernelGuard {
  KernelGuard() = default;
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;
  ~KernelGuard() { simd::reset_active_kernels_for_testing(); }
};

/// Forces the best vector table this build + CPU supports. False when
/// only the scalar table is usable (non-SIMD build or old hardware).
bool force_vector_kernels() {
  return simd::set_active_kernels_for_testing(simd::Isa::kAvx2) ||
         simd::set_active_kernels_for_testing(simd::Isa::kNeon);
}

std::vector<cd> random_complex(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cd> v(n);
  for (auto& z : v) z = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return v;
}

std::vector<double> random_pmf(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double total = 0.0;
  for (auto& x : v) {
    x = rng.uniform();
    total += x;
  }
  for (auto& x : v) x /= total;
  return v;
}

TEST(FftSimdDispatch, ActiveTableIsCoherent) {
  const simd::FftKernels& k = simd::active_fft_kernels();
  ASSERT_NE(k.radix4_pass, nullptr);
  ASSERT_NE(k.cmul, nullptr);
  ASSERT_NE(k.name, nullptr);
  EXPECT_STREQ(k.name, simd::active_isa_name());
  const std::string name = k.name;
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "neon") << name;
#if !LRD_SIMD
  // -DLRD_DISABLE_SIMD compiles the vector tables out entirely; the
  // dispatcher must land on scalar, not merely prefer it.
  EXPECT_EQ(name, "scalar");
  EXPECT_FALSE(simd::set_active_kernels_for_testing(simd::Isa::kAvx2));
  EXPECT_FALSE(simd::set_active_kernels_for_testing(simd::Isa::kNeon));
  simd::reset_active_kernels_for_testing();
#endif
}

TEST(FftSimdDispatch, ScalarForceAlwaysSucceedsAndResetRedetects) {
  KernelGuard guard;
  const std::string detected = simd::active_isa_name();
  ASSERT_TRUE(simd::set_active_kernels_for_testing(simd::Isa::kScalar));
  EXPECT_STREQ(simd::active_isa_name(), "scalar");
  simd::reset_active_kernels_for_testing();
  EXPECT_EQ(simd::active_isa_name(), detected);
}

TEST(FftSimdDispatch, UnavailableIsaIsRefusedWithoutSideEffects) {
  KernelGuard guard;
  ASSERT_TRUE(simd::set_active_kernels_for_testing(simd::Isa::kScalar));
#if defined(__aarch64__)
  const simd::Isa missing = simd::Isa::kAvx2;
#else
  const simd::Isa missing = simd::Isa::kNeon;
#endif
  EXPECT_FALSE(simd::set_active_kernels_for_testing(missing));
  EXPECT_STREQ(simd::active_isa_name(), "scalar");
}

TEST(FftSimdDispatch, CmulMatchesScalarReferenceOnOddCounts) {
  // Vector cmul kernels carry a scalar tail; exercise every remainder
  // class around the vector width on the active table.
  KernelGuard guard;
  if (!force_vector_kernels()) GTEST_SKIP() << "no vector ISA on this build/CPU";
  const simd::CmulFn vec = simd::active_fft_kernels().cmul;
  for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
                            std::size_t{8}, std::size_t{13}}) {
    auto a = random_complex(count, 100 + count);
    const auto b = random_complex(count, 200 + count);
    auto ref = a;
    simd::detail::cmul_scalar(ref.data(), b.data(), count);
    vec(a.data(), b.data(), count);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_NEAR(std::abs(a[i] - ref[i]), 0.0, 1e-14) << "count " << count << " i " << i;
  }
}

/// Power-of-two transform sizes 8..16384 (the solver's working range).
class FftSimdParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSimdParity, ForwardSpectraAgreeAcrossTables) {
  const std::size_t n = GetParam();
  KernelGuard guard;
  const auto input = random_complex(n, n);

  ASSERT_TRUE(simd::set_active_kernels_for_testing(simd::Isa::kScalar));
  auto scalar_spec = input;
  fft_plan(n).forward(scalar_spec.data());

  if (!force_vector_kernels()) GTEST_SKIP() << "no vector ISA on this build/CPU";
  auto vector_spec = input;
  fft_plan(n).forward(vector_spec.data());

  double scale = 1.0;
  for (const auto& z : scalar_spec) scale = std::max(scale, std::abs(z));
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(vector_spec[k] - scalar_spec[k]), 0.0, 1e-12 * scale)
        << "n " << n << " bin " << k;
}

TEST_P(FftSimdParity, RoundTripRecoversInputOnBothTables) {
  const std::size_t n = GetParam();
  KernelGuard guard;
  const auto input = random_complex(n, 3 * n + 1);
  const bool have_vector = force_vector_kernels();
  simd::reset_active_kernels_for_testing();

  for (int pass = 0; pass < (have_vector ? 2 : 1); ++pass) {
    if (pass == 0) {
      ASSERT_TRUE(simd::set_active_kernels_for_testing(simd::Isa::kScalar));
    } else {
      ASSERT_TRUE(force_vector_kernels());
    }
    auto data = input;
    const FftPlan& plan = fft_plan(n);
    plan.forward(data.data());
    plan.inverse(data.data());
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(std::abs(data[i] * inv_n - input[i]), 0.0, 1e-12)
          << simd::active_isa_name() << " n " << n << " index " << i;
  }
}

TEST_P(FftSimdParity, RealRoundTripRecoversInputOnBothTables) {
  const std::size_t n = GetParam();
  KernelGuard guard;
  Rng rng(5 * n + 3);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-2.0, 2.0);
  const bool have_vector = force_vector_kernels();
  simd::reset_active_kernels_for_testing();

  for (int pass = 0; pass < (have_vector ? 2 : 1); ++pass) {
    if (pass == 0) {
      ASSERT_TRUE(simd::set_active_kernels_for_testing(simd::Isa::kScalar));
    } else {
      ASSERT_TRUE(force_vector_kernels());
    }
    const RealFft rfft(n);
    std::vector<cd> spec(rfft.spectrum_size());
    std::vector<double> out(n);
    rfft.forward(x.data(), x.size(), spec.data());
    rfft.inverse(spec.data(), out.data());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(out[i], x[i], 1e-12) << simd::active_isa_name() << " n " << n << " i " << i;
  }
}

TEST_P(FftSimdParity, CachedConvolutionAgreesAcrossTables) {
  // The solver-facing surface: a cached-kernel convolution of pmfs must
  // give the same masses whichever table multiplied the spectra.
  const std::size_t bins = GetParam();
  KernelGuard guard;
  const auto kernel = random_pmf(2 * bins + 1, bins + 7);
  const auto signal = random_pmf(bins + 1, bins + 11);

  ASSERT_TRUE(simd::set_active_kernels_for_testing(simd::Isa::kScalar));
  const auto scalar_out = CachedKernelConvolver(kernel, signal.size()).convolve(signal);

  if (!force_vector_kernels()) GTEST_SKIP() << "no vector ISA on this build/CPU";
  const auto vector_out = CachedKernelConvolver(kernel, signal.size()).convolve(signal);

  ASSERT_EQ(vector_out.size(), scalar_out.size());
  for (std::size_t i = 0; i < scalar_out.size(); ++i)
    EXPECT_NEAR(vector_out[i], scalar_out[i], 1e-12) << "bins " << bins << " i " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSimdParity,
                         ::testing::Values(8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
                                           8192, 16384));

}  // namespace
