// Tests for the serving tier: wire protocol, query service semantics
// (cache provenance, deadlines, required-buffer search) and the unix
// socket server (concurrent sessions, admission control, drain).
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "obs/bundle.hpp"
#include "obs/context.hpp"
#include "obs/doctor.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runtime/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace lrd;
namespace json = lrd::obs::json;

// A small cell that converges in a few dozen iterations.
const char* kCellFields =
    "\"rates\": [2, 6, 10], \"probs\": [0.3, 0.4, 0.3], \"cutoff\": 5, \"buffer\": 0.2";

serve::Query small_cell_query() {
  auto q = serve::parse_query(std::string("{") + kCellFields + "}");
  EXPECT_TRUE(q.has_value()) << q.status().describe();
  return q.value();
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, ParsesFullSolveQuery) {
  const auto parsed = serve::parse_query(
      R"({"id": "q1", "op": "solve", "rates": [2, 10], "probs": [0.5, 0.5],
          "hurst": 0.9, "mean_epoch": 0.08, "cutoff": "inf", "utilization": 0.7,
          "buffer": 1.5, "gap": 0.1, "max_bins": 4096, "deadline_ms": 250,
          "target_loss": 1e-4, "cache": false})");
  ASSERT_TRUE(parsed.has_value()) << parsed.status().describe();
  const serve::Query& q = parsed.value();
  EXPECT_EQ(q.id, "q1");
  EXPECT_EQ(q.op, serve::QueryOp::kSolve);
  EXPECT_EQ(q.rates, (std::vector<double>{2, 10}));
  EXPECT_TRUE(std::isinf(q.cutoff));
  EXPECT_EQ(q.utilization, 0.7);
  EXPECT_EQ(q.normalized_buffer, 1.5);
  EXPECT_EQ(q.target_relative_gap, 0.1);
  EXPECT_EQ(q.max_bins, 4096u);
  EXPECT_EQ(q.deadline_ms, 250u);
  ASSERT_TRUE(q.target_loss.has_value());
  EXPECT_EQ(*q.target_loss, 1e-4);
  EXPECT_FALSE(q.use_cache);
}

TEST(ServeProtocol, DefaultsMirrorLrdqSolve) {
  const serve::Query q = small_cell_query();
  EXPECT_EQ(q.hurst, 0.85);
  EXPECT_EQ(q.mean_epoch, 0.05);
  EXPECT_EQ(q.utilization, 0.8);
  EXPECT_EQ(q.target_relative_gap, 0.2);
  EXPECT_EQ(q.max_bins, std::size_t{1} << 14);
  EXPECT_EQ(q.deadline_ms, 0u);
  EXPECT_TRUE(q.use_cache);
}

TEST(ServeProtocol, RejectsUnknownKeysAndBadTypes) {
  EXPECT_FALSE(serve::parse_query(R"({"utilisation": 0.8})").has_value())
      << "typo'd keys must fail fast, not silently answer another question";
  EXPECT_FALSE(serve::parse_query(R"({"rates": "2,6"})").has_value());
  EXPECT_FALSE(serve::parse_query(R"({"op": "solve"})").has_value()) << "rates/probs required";
  EXPECT_FALSE(serve::parse_query(R"({"target_loss": 2})").has_value());
  EXPECT_FALSE(serve::parse_query("not json").has_value());
  EXPECT_FALSE(serve::parse_query("[1, 2]").has_value());
  const auto diag = serve::parse_query(R"({"bogus": 1})").diagnostics();
  EXPECT_NE(diag.message.find("bogus"), std::string::npos)
      << "diagnostic names the offending key";
}

TEST(ServeProtocol, StatusCodesFollowTheExitTaxonomy) {
  EXPECT_EQ(serve::query_status_code(serve::QueryStatus::kOk, ErrorCategory::kNone), 0);
  EXPECT_EQ(serve::query_status_code(serve::QueryStatus::kNotConverged, ErrorCategory::kNone), 1);
  EXPECT_EQ(
      serve::query_status_code(serve::QueryStatus::kDeadlineExceeded, ErrorCategory::kNone), 6);
  EXPECT_EQ(serve::query_status_code(serve::QueryStatus::kCancelled, ErrorCategory::kNone), 6);
  EXPECT_EQ(serve::query_status_code(serve::QueryStatus::kShed, ErrorCategory::kNone), 7);
  EXPECT_EQ(
      serve::query_status_code(serve::QueryStatus::kError, ErrorCategory::kInvalidConfig), 3);
  EXPECT_EQ(serve::query_status_code(serve::QueryStatus::kError, ErrorCategory::kIo), 5);
}

TEST(ServeProtocol, ResponseJsonParsesBackAndEscapes) {
  serve::Response r;
  r.id = "he said \"hi\"\n";
  r.status = serve::QueryStatus::kOk;
  r.has_solve = true;
  r.loss_estimate = 1.0 / 3.0;
  r.loss_lower = 0.25;
  r.loss_upper = 0.5;
  r.stop = "converged";
  r.converged = true;
  r.cache_salt = std::string(runtime::kCacheVersionSalt);
  const auto parsed = json::parse(r.to_json());
  ASSERT_TRUE(parsed.has_value()) << parsed.status().describe();
  const json::Value& v = parsed.value();
  EXPECT_EQ(v.string_at("id"), "he said \"hi\"\n");
  EXPECT_EQ(v.string_at("status"), "ok");
  EXPECT_EQ(v.number_at("code", -1), 0.0);
  ASSERT_NE(v.find("loss"), nullptr);
  // %.17g round-trips the estimate bit-exactly through the JSON layer.
  EXPECT_EQ(v.find("loss")->number_at("estimate"), 1.0 / 3.0);
}

TEST(ServeProtocol, ResponseEchoesTheCorrelationIdWhenMinted) {
  serve::Response r;
  r.id = "q";
  r.status = serve::QueryStatus::kOk;
  // No id minted (obs disabled, or a control op outside any query scope):
  // the field stays off the wire rather than echoing a meaningless 0.
  ASSERT_TRUE(json::parse(r.to_json()).has_value());
  EXPECT_EQ(json::parse(r.to_json()).value().find("query_id"), nullptr);

  r.query_id = 0x1d2c3b4a5ull;  // 48-bit ids are exact in JSON doubles
  const auto parsed = json::parse(r.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(parsed.value().number_at("query_id")),
            0x1d2c3b4a5ull);
}

// ----------------------------------------------------------------- service

TEST(ServeService, SolveMatchesDirectSolverBitExactly) {
  const serve::Query q = small_cell_query();
  const serve::QueryService service(nullptr);
  const serve::Response r = service.execute(q);
  ASSERT_EQ(r.status, serve::QueryStatus::kOk) << r.diagnostic;

  // The same cell through core::FluidModel directly — the lrdq_solve
  // path. Brackets must agree to the last bit.
  const dist::Marginal m(q.rates, q.probs);
  core::ModelConfig mc;
  mc.hurst = q.hurst;
  mc.mean_epoch = q.mean_epoch;
  mc.cutoff = q.cutoff;
  mc.utilization = q.utilization;
  mc.normalized_buffer = q.normalized_buffer;
  queueing::SolverConfig scfg;
  scfg.target_relative_gap = q.target_relative_gap;
  scfg.max_bins = q.max_bins;
  const auto direct = core::FluidModel(m, mc).solve(scfg);

  EXPECT_EQ(r.loss_estimate, direct.loss_estimate());
  EXPECT_EQ(r.loss_lower, direct.loss.lower);
  EXPECT_EQ(r.loss_upper, direct.loss.upper);
  EXPECT_EQ(r.iterations, direct.iterations);
  EXPECT_EQ(r.bins, direct.final_bins);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(r.cache_tier, serve::CacheTier::kNone);
}

TEST(ServeService, CacheProvenanceCoversMemoryAndDiskTiers) {
  const std::string dir = ::testing::TempDir() + "lrd_serve_cache";
  std::filesystem::remove_all(dir);
  const serve::Query q = small_cell_query();
  double first_estimate = 0.0;
  std::uint64_t key = 0;
  {
    runtime::SolverCache cache(dir);
    const serve::QueryService service(&cache);
    const serve::Response miss = service.execute(q);
    ASSERT_EQ(miss.status, serve::QueryStatus::kOk);
    EXPECT_FALSE(miss.cache_hit);
    first_estimate = miss.loss_estimate;
    key = miss.cache_key;

    const serve::Response hit = service.execute(q);
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.cache_tier, serve::CacheTier::kMemory);
    EXPECT_EQ(hit.cache_key, key);
    EXPECT_EQ(hit.loss_estimate, first_estimate) << "cached estimate is bit-exact";
    EXPECT_TRUE(std::isnan(hit.loss_lower)) << "the cache has no bracket to report";
    EXPECT_EQ(hit.stop, "cached");
  }
  // A fresh daemon over the same cache dir: the disk tier answers. The
  // warmed memory tier serves it, so force the disk path by evicting —
  // capacity 16 with ~1 warm entry stays memory; instead reopen with a
  // cache whose memory tier we bypass via a cold lookup after eviction
  // pressure. Simplest honest check: stats show the value was loaded and
  // the estimate matches bit-exactly across processes.
  {
    runtime::SolverCache cache(dir);
    EXPECT_EQ(cache.stats().loaded, 1u);
    const serve::QueryService service(&cache);
    const serve::Response hit = service.execute(q);
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.loss_estimate, first_estimate)
        << "persisted estimate survives the process boundary bit-exactly";
  }
  // The disk tier as second level, via the provenance bit directly.
  {
    runtime::SolverCacheConfig cfg;
    cfg.disk_dir = dir;
    runtime::SolverCache cache(cfg);
    bool from_disk = false;
    // Key is warmed into memory on load; a synthetic second key exercises
    // the miss path.
    EXPECT_FALSE(cache.lookup(key ^ 1, &from_disk).has_value());
    EXPECT_FALSE(from_disk);
    ASSERT_TRUE(cache.lookup(key, &from_disk).has_value());
    EXPECT_FALSE(from_disk) << "warm-loaded entries are memory-tier hits";
  }
}

TEST(ServeService, CacheBypassSolvesFreshAndStoresNothing) {
  runtime::SolverCache cache;
  const serve::QueryService service(&cache);
  serve::Query q = small_cell_query();
  q.use_cache = false;
  const serve::Response r = service.execute(q);
  ASSERT_EQ(r.status, serve::QueryStatus::kOk);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().stores, 0u);
}

TEST(ServeService, DeadlineBoundsTheSolveWithAValidWideBracket) {
  const serve::QueryService service(nullptr);
  serve::Query q = small_cell_query();
  q.cutoff = std::numeric_limits<double>::infinity();
  q.normalized_buffer = 2.0;
  q.target_relative_gap = 1e-5;  // unreachable in the budget
  q.max_bins = 1 << 20;
  q.deadline_ms = 80;
  const auto t0 = std::chrono::steady_clock::now();
  const serve::Response r = service.execute(q);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(r.status, serve::QueryStatus::kDeadlineExceeded);
  EXPECT_EQ(r.code(), 6);
  EXPECT_LT(ms, 5000.0) << "a deadline-bounded query must return promptly, never hang";
  EXPECT_TRUE(std::isfinite(r.loss_lower));
  EXPECT_TRUE(std::isfinite(r.loss_upper));
  EXPECT_LE(r.loss_lower, r.loss_upper) << "the bracket stays valid, just wide";
  EXPECT_NE(r.diagnostic.find("deadline"), std::string::npos);
}

TEST(ServeService, ServiceDefaultAndClampGovernDeadlines) {
  serve::ServiceConfig cfg;
  cfg.default_deadline_ms = 60;
  const serve::QueryService service(nullptr, cfg);
  serve::Query q = small_cell_query();
  q.cutoff = std::numeric_limits<double>::infinity();
  q.normalized_buffer = 2.0;
  q.target_relative_gap = 1e-5;
  q.max_bins = 1 << 20;  // no per-query deadline: the default applies
  EXPECT_EQ(service.execute(q).status, serve::QueryStatus::kDeadlineExceeded);

  serve::ServiceConfig clamp;
  clamp.max_deadline_ms = 60;
  const serve::QueryService clamped(nullptr, clamp);
  q.deadline_ms = 3600 * 1000;  // a client asking for an hour gets the clamp
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(clamped.execute(q).status, serve::QueryStatus::kDeadlineExceeded);
  const double clamped_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(clamped_ms, 5000.0);
}

TEST(ServeService, CancellationYieldsCancelledStatus) {
  const serve::QueryService service(nullptr);
  serve::Query q = small_cell_query();
  q.cutoff = std::numeric_limits<double>::infinity();
  q.normalized_buffer = 2.0;
  q.target_relative_gap = 1e-5;
  q.max_bins = 1 << 20;
  runtime::CancellationToken token;
  token.cancel();  // pre-cancelled: the drain path for queued queries
  const serve::Response r = service.execute(q, &token);
  EXPECT_EQ(r.status, serve::QueryStatus::kCancelled);
  EXPECT_EQ(r.code(), 6);
}

TEST(ServeService, InvalidModelAnswersErrorNotThrow) {
  const serve::QueryService service(nullptr);
  serve::Query q = small_cell_query();
  q.utilization = 1.5;  // outside (0, 1)
  const serve::Response r = service.execute(q);
  EXPECT_EQ(r.status, serve::QueryStatus::kError);
  EXPECT_EQ(r.code(), 3);
  EXPECT_FALSE(r.diagnostic.empty());
}

TEST(ServeService, ControlOpsAnswerPingStatsInvalidate) {
  runtime::SolverCache cache;
  const serve::QueryService service(&cache);
  const serve::Response ping =
      service.execute_line(R"({"op": "ping", "id": "p"})");
  EXPECT_EQ(ping.status, serve::QueryStatus::kOk);
  EXPECT_EQ(ping.op, "ping");

  service.execute(small_cell_query());
  const serve::Response stats = service.execute_line(R"({"op": "stats"})");
  const auto parsed = json::parse(stats.to_json());
  ASSERT_TRUE(parsed.has_value());
  const json::Value* cache_obj = parsed.value().find("cache");
  ASSERT_NE(cache_obj, nullptr);
  EXPECT_EQ(cache_obj->number_at("stores", -1), 1.0);
  EXPECT_EQ(cache_obj->number_at("resident", -1), 1.0);

  const serve::Response inval = service.execute_line(R"({"op": "invalidate"})");
  EXPECT_EQ(inval.status, serve::QueryStatus::kOk);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ServeService, StatsReportLatencyAndQueueWaitQuantiles) {
  if constexpr (!obs::kObsEnabled) GTEST_SKIP() << "obs compiled out";
  runtime::SolverCache cache;
  const serve::QueryService service(&cache);
  const serve::Response stats = service.execute_line(R"({"op": "stats"})");
  const auto parsed = json::parse(stats.to_json());
  ASSERT_TRUE(parsed.has_value());
  for (const char* section : {"latency", "queue_wait"}) {
    const json::Value* obj = parsed.value().find(section);
    ASSERT_NE(obj, nullptr) << section;
    // Quantiles are present (possibly null while empty) alongside a count.
    EXPECT_GE(obj->number_at("count", -1.0), 0.0) << section;
    ASSERT_NE(obj->find("p50_ms"), nullptr) << section;
    ASSERT_NE(obj->find("p99_ms"), nullptr) << section;
  }
}

TEST(ServeService, DumpOpReportsTheBundleOrAConfigError) {
  runtime::SolverCache cache;
  const serve::QueryService service(&cache);
  obs::bundle::reset_for_tests();
  const serve::Response unconfigured = service.execute_line(R"({"op": "dump", "id": "d"})");
  EXPECT_EQ(unconfigured.status, serve::QueryStatus::kError);
  EXPECT_NE(unconfigured.diagnostic.find("--dump-dir"), std::string::npos);

  if constexpr (obs::kObsEnabled) {
    const auto dir =
        std::filesystem::temp_directory_path() / ("lrd-serve-dump-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    obs::bundle::Config cfg;
    cfg.dir = dir.string();
    cfg.tool = "lrd_tests";
    cfg.install_crash_handler = false;
    obs::bundle::configure(cfg);
    const serve::Response dumped = service.execute_line(R"({"op": "dump", "id": "d"})");
    EXPECT_EQ(dumped.status, serve::QueryStatus::kOk);
    const auto parsed = json::parse(dumped.to_json());
    ASSERT_TRUE(parsed.has_value());
    const std::string bundle = parsed.value().string_at("bundle");
    ASSERT_FALSE(bundle.empty());
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(bundle) / "bundle.json"));
    obs::bundle::reset_for_tests();
    std::filesystem::remove_all(dir);
  }
}

TEST(ServeService, RequiredBufferSearchMeetsTheTarget) {
  runtime::SolverCache cache;  // probes share the cache like sweep cells
  const serve::QueryService service(&cache);
  serve::Query q = small_cell_query();
  const serve::Response base = service.execute(q);
  ASSERT_EQ(base.status, serve::QueryStatus::kOk);
  // Ask for one decade below the base cell's loss: a larger buffer than
  // the query's own must be needed.
  q.target_loss = base.loss_estimate / 10.0;
  const serve::Response r = service.execute(q);
  ASSERT_EQ(r.status, serve::QueryStatus::kOk) << r.diagnostic;
  ASSERT_TRUE(r.has_required_buffer);
  EXPECT_GT(r.required_normalized_buffer, q.normalized_buffer);
  EXPECT_LE(r.required_buffer_loss, *q.target_loss)
      << "the reported buffer's own loss estimate meets the target";
  EXPECT_GT(r.required_buffer_mb, 0.0);
  EXPECT_GT(cache.stats().stores, 2u) << "probe solves populate the shared cache";

  // The trivially-satisfied case: target above the base loss comes back
  // with a buffer no larger than the query's own.
  q.target_loss = base.loss_estimate * 2.0;
  const serve::Response easy = service.execute(q);
  ASSERT_TRUE(easy.has_required_buffer);
  EXPECT_LE(easy.required_normalized_buffer, q.normalized_buffer);
}

// ------------------------------------------------------------------ server

class ScriptedClient {
 public:
  explicit ScriptedClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    connected_ =
        fd_ >= 0 && ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0;
  }
  ~ScriptedClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
  }

  /// Reads until `n` response lines arrived or `timeout_ms` elapsed.
  std::vector<json::Value> read_responses(std::size_t n, int timeout_ms = 30000) {
    std::vector<json::Value> out;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    std::string buf;
    while (out.size() < n && std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 100) <= 0) continue;
      char chunk[4096];
      const ssize_t r = ::read(fd_, chunk, sizeof chunk);
      if (r <= 0) break;  // server closed (drain)
      buf.append(chunk, static_cast<std::size_t>(r));
      std::size_t nl;
      while ((nl = buf.find('\n')) != std::string::npos) {
        auto parsed = json::parse(buf.substr(0, nl));
        buf.erase(0, nl + 1);
        if (parsed.has_value()) out.push_back(std::move(parsed).take());
      }
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

std::string test_socket_path(const char* name) {
  // Keep it short: sun_path is ~108 bytes and TempDir can be deep.
  return "/tmp/lrd_" + std::string(name) + "_" + std::to_string(::getpid()) + ".sock";
}

TEST(ServeServer, AnswersConcurrentClientsAndSharesTheCache) {
  const std::string sock = test_socket_path("srv");
  runtime::SolverCache cache;
  const serve::QueryService service(&cache);
  serve::ServerConfig cfg;
  cfg.socket_path = sock;
  cfg.threads = 2;
  serve::Server server(cfg, service);
  ASSERT_TRUE(server.start().is_ok());

  const std::string query = std::string("{\"id\": \"c\", ") + kCellFields + "}";
  std::vector<json::Value> first, second;
  {
    ScriptedClient a(sock), b(sock);
    ASSERT_TRUE(a.connected());
    ASSERT_TRUE(b.connected());
    a.send_line(query);
    first = a.read_responses(1);
    b.send_line(query);
    second = b.read_responses(1);
  }
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].string_at("status"), "ok");
  EXPECT_EQ(second[0].string_at("status"), "ok");
  // Client b's query is the same cell: served from the cache that
  // client a's solve populated, estimate bit-identical.
  EXPECT_TRUE(second[0].find("cache")->find("hit")->as_bool());
  EXPECT_EQ(second[0].find("loss")->number_at("estimate"),
            first[0].find("loss")->number_at("estimate"));
  if constexpr (obs::kObsEnabled) {
    // Every admitted query gets its own correlation id, echoed back so
    // the client can hand it to `lrdq_doctor --query`.
    EXPECT_GT(first[0].number_at("query_id", 0), 0.0);
    EXPECT_GT(second[0].number_at("query_id", 0), 0.0);
    EXPECT_NE(first[0].number_at("query_id", 0), second[0].number_at("query_id", 0));
  }

  server.request_drain();
  server.wait();
  EXPECT_EQ(server.queries_seen(), 2u);
  EXPECT_EQ(server.queries_shed(), 0u);
}

TEST(ServeServer, ShedsPastTheAdmissionBoundWithCode7) {
  const std::string sock = test_socket_path("shed");
  const serve::QueryService service(nullptr);
  serve::ServerConfig cfg;
  cfg.socket_path = sock;
  cfg.threads = 1;      // one worker, deliberately easy to saturate
  cfg.queue_limit = 1;  // one waiter
  serve::Server server(cfg, service);
  ASSERT_TRUE(server.start().is_ok());

  ScriptedClient client(sock);
  ASSERT_TRUE(client.connected());
  // A slow query occupies the single worker (tight gap, deadline-bounded
  // so the test cannot hang)...
  client.send_line(std::string("{\"id\": \"slow\", ") + kCellFields +
                   ", \"cutoff\": \"inf\", \"buffer\": 2.0, \"gap\": 1e-6"
                   ", \"max_bins\": 1048576, \"deadline_ms\": 1500}");
  // ... give the worker time to pick it up, then burst past the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  constexpr std::size_t kBurst = 6;
  for (std::size_t i = 0; i < kBurst; ++i)
    client.send_line(std::string("{\"id\": \"burst") + std::to_string(i) + "\", " + kCellFields +
                     "}");

  // Every query — admitted or shed — gets exactly one response.
  const std::vector<json::Value> responses = client.read_responses(1 + kBurst);
  ASSERT_EQ(responses.size(), 1 + kBurst);
  std::size_t shed = 0, answered = 0;
  for (const json::Value& r : responses) {
    if (r.string_at("status") == "shed") {
      ++shed;
      EXPECT_EQ(r.number_at("code", -1), 7.0);
      EXPECT_NE(r.string_at("id").find("burst"), std::string::npos)
          << "only burst queries are shed; the slow query was admitted";
    } else {
      ++answered;
    }
  }
  EXPECT_GE(shed, kBurst - 1) << "with a 1-deep queue the burst must shed";
  EXPECT_EQ(shed, server.queries_shed());
  EXPECT_EQ(answered + shed, 1 + kBurst);

  server.request_stop();  // cancel the slow solve instead of waiting it out
  server.wait();
}

TEST(ServeServer, DrainAnswersAdmittedQueriesThenExits) {
  const std::string sock = test_socket_path("drain");
  runtime::SolverCache cache;
  const serve::QueryService service(&cache);
  serve::ServerConfig cfg;
  cfg.socket_path = sock;
  cfg.threads = 1;
  serve::Server server(cfg, service);
  ASSERT_TRUE(server.start().is_ok());

  ScriptedClient client(sock);
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 3; ++i)
    client.send_line(std::string("{\"id\": \"d") + std::to_string(i) + "\", " + kCellFields + "}");
  // Let the I/O thread admit all three, then drain: every admitted query
  // must still be answered before the server tears down.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server.request_drain();
  const std::vector<json::Value> responses = client.read_responses(3);
  server.wait();
  ASSERT_EQ(responses.size(), 3u);
  for (const json::Value& r : responses) {
    const double code = r.number_at("code", -1);
    EXPECT_TRUE(code == 0.0 || code == 6.0) << "ok or cancelled-by-drain, never dropped";
  }
  EXPECT_FALSE(std::filesystem::exists(sock)) << "socket file removed on shutdown";
}

TEST(ServeServer, DoctorTriagesALiveDaemonOverItsSocket) {
  if constexpr (!obs::kObsEnabled) GTEST_SKIP() << "obs compiled out";
  const std::string sock = test_socket_path("doc");
  const auto dump_dir =
      std::filesystem::temp_directory_path() / ("lrd-doc-sock-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dump_dir);
  obs::bundle::Config bcfg;
  bcfg.dir = dump_dir.string();
  bcfg.tool = "lrd_tests";
  bcfg.install_crash_handler = false;
  obs::bundle::configure(bcfg);

  runtime::SolverCache cache;
  const serve::QueryService service(&cache);
  serve::ServerConfig cfg;
  cfg.socket_path = sock;
  cfg.threads = 1;
  serve::Server server(cfg, service);
  ASSERT_TRUE(server.start().is_ok());

  // Answer one query so the bundle's flight recorder has a story to tell.
  {
    ScriptedClient client(sock);
    ASSERT_TRUE(client.connected());
    client.send_line(std::string("{\"id\": \"doc\", ") + kCellFields + "}");
    ASSERT_EQ(client.read_responses(1).size(), 1u);
  }

  // The doctor's live-socket path: dump op over the wire, then triage of
  // the bundle the daemon reported.
  const auto report = obs::doctor::triage_socket(sock);
  ASSERT_TRUE(static_cast<bool>(report)) << report.diagnostics().describe();
  EXPECT_NE(report.value().find("bundle"), std::string::npos) << report.value();

  obs::doctor::Options jopt;
  jopt.json = true;
  const auto json_report = obs::doctor::triage_socket(sock, jopt);
  ASSERT_TRUE(static_cast<bool>(json_report));
  const auto parsed = json::parse(json_report.value());
  ASSERT_TRUE(parsed.has_value()) << json_report.value();
  EXPECT_EQ(parsed.value().string_at("kind"), "doctor");

  server.request_drain();
  server.wait();

  // Unreachable socket: a diagnostic, not a hang or a throw.
  EXPECT_FALSE(static_cast<bool>(obs::doctor::triage_socket(sock)));

  obs::bundle::reset_for_tests();
  std::filesystem::remove_all(dump_dir);
}

}  // namespace
