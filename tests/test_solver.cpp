// Tests of the bounded queue solver: exact cases, Proposition II.1
// monotonicity, increment-pmf structure, agreement with Monte Carlo, and
// the zero-allocation guarantee of the batched epoch engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <numeric>

#include "dist/simple_epochs.hpp"
#include "dist/truncated_pareto.hpp"
#include "numerics/special_functions.hpp"
#include "queueing/fluid_queue_sim.hpp"
#include "queueing/solver.hpp"

// Counting global allocator: every operator new in this test binary
// bumps a relaxed atomic, so a test can prove a code region performs
// zero heap allocations. Forwarding to malloc/free keeps ASan/TSan
// interception intact. (Replacements must live at global scope.)
namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) noexcept {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p != nullptr) g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept { return counted_alloc(size); }
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace lrd;
using dist::Marginal;
using queueing::FluidQueueSolver;
using queueing::SolverConfig;

std::shared_ptr<const dist::TruncatedPareto> pareto(double theta, double alpha, double tc) {
  return std::make_shared<const dist::TruncatedPareto>(theta, alpha, tc);
}

TEST(Solver, ConstructionValidation) {
  Marginal m({1.0}, {1.0});
  auto d = std::make_shared<const dist::ExponentialEpoch>(1.0);
  EXPECT_THROW(FluidQueueSolver(m, nullptr, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(FluidQueueSolver(m, d, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(FluidQueueSolver(m, d, 1.0, 0.0), std::invalid_argument);
}

TEST(Solver, ConfigValidation) {
  Marginal m({1.0}, {1.0});
  auto d = std::make_shared<const dist::ExponentialEpoch>(1.0);
  FluidQueueSolver s(m, d, 2.0, 1.0);
  SolverConfig c;
  c.initial_bins = 1;
  EXPECT_THROW(s.solve(c), std::invalid_argument);
  c = SolverConfig{};
  c.max_bins = 16;
  c.initial_bins = 64;
  EXPECT_THROW(s.solve(c), std::invalid_argument);
  c = SolverConfig{};
  c.check_every = 0;
  EXPECT_THROW(s.solve(c), std::invalid_argument);
  c = SolverConfig{};
  c.target_relative_gap = 0.0;
  EXPECT_THROW(s.solve(c), std::invalid_argument);
}

TEST(Solver, ExactTwoStateRandomWalk) {
  // T = 1 deterministic, rates {0, 3} w.p. {2/3, 1/3}, c = 2, B = 1.
  // The occupancy chain lives on {0, 1} with Pr{Q = 1} = 1/3, and
  // l = E[W_l] / (mean * E[T]) = (1/3)(1/3) / 1 = 1/9 exactly.
  Marginal m({0.0, 3.0}, {2.0 / 3.0, 1.0 / 3.0});
  auto d = std::make_shared<const dist::DeterministicEpoch>(1.0);
  FluidQueueSolver s(m, d, 2.0, 1.0);
  auto r = s.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.loss.lower, 1.0 / 9.0, 1e-9);
  EXPECT_NEAR(r.loss.upper, 1.0 / 9.0, 1e-9);
  EXPECT_NEAR(r.mean_queue_lower, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.mean_queue_upper, 1.0 / 3.0, 1e-9);
}

TEST(Solver, DeterministicOverloadLosesExcessFraction) {
  // A constant rate above c loses exactly (rate - c)/rate once the buffer
  // is full, for any buffer size and epoch law.
  Marginal m = Marginal::constant(4.0);
  auto d = std::make_shared<const dist::ExponentialEpoch>(1.0);
  FluidQueueSolver s(m, d, 3.0, 2.0);
  auto r = s.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.loss_estimate(), 0.25, 1e-6);
}

TEST(Solver, NoLossWhenAllRatesBelowService) {
  Marginal m({1.0, 2.0}, {0.5, 0.5});
  auto d = pareto(0.1, 1.5, 100.0);
  FluidQueueSolver s(m, d, 2.5, 1.0);
  auto r = s.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.zero_loss);
  EXPECT_DOUBLE_EQ(r.loss_estimate(), 0.0);
}

TEST(Solver, RateEqualToServiceIsHandled) {
  Marginal m({1.0, 2.5, 4.0}, {0.4, 0.2, 0.4});
  auto d = std::make_shared<const dist::ExponentialEpoch>(2.0);
  FluidQueueSolver s(m, d, 2.5, 1.0);
  auto r = s.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.loss_estimate(), 0.0);
  EXPECT_LT(r.loss_estimate(), 1.0);
}

TEST(Solver, UtilizationAccessor) {
  Marginal m({2.0, 6.0}, {0.5, 0.5});
  FluidQueueSolver s(m, pareto(0.1, 1.5, 10.0), 5.0, 1.0);
  EXPECT_DOUBLE_EQ(s.utilization(), 0.8);
}

// ---- Increment pmf structure --------------------------------------------

class IncrementPmf : public ::testing::TestWithParam<std::size_t> {
 protected:
  FluidQueueSolver make_solver() const {
    Marginal m({1.0, 5.0, 11.0}, {0.3, 0.4, 0.3});
    return FluidQueueSolver(m, pareto(0.05, 1.3, 8.0), 6.0, 4.0);
  }
};

TEST_P(IncrementPmf, BothSumToOne) {
  const std::size_t bins = GetParam();
  auto s = make_solver();
  auto wl = s.increment_pmf_lower(bins);
  auto wh = s.increment_pmf_upper(bins);
  ASSERT_EQ(wl.size(), 2 * bins + 1);
  ASSERT_EQ(wh.size(), 2 * bins + 1);
  EXPECT_NEAR(std::accumulate(wl.begin(), wl.end(), 0.0), 1.0, 1e-12);
  EXPECT_NEAR(std::accumulate(wh.begin(), wh.end(), 0.0), 1.0, 1e-12);
  for (double p : wl) EXPECT_GE(p, 0.0);
  for (double p : wh) EXPECT_GE(p, 0.0);
}

TEST_P(IncrementPmf, UpperStochasticallyDominatesLower) {
  // w_H quantizes W upward, w_L downward: for every threshold k the upper
  // tail mass of w_H from k must be >= that of w_L.
  const std::size_t bins = GetParam();
  auto s = make_solver();
  auto wl = s.increment_pmf_lower(bins);
  auto wh = s.increment_pmf_upper(bins);
  double tail_l = 0.0, tail_h = 0.0;
  for (std::size_t k = wl.size(); k-- > 0;) {
    tail_l += wl[k];
    tail_h += wh[k];
    EXPECT_GE(tail_h, tail_l - 1e-12) << "threshold " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Bins, IncrementPmf, ::testing::Values(4, 16, 100, 512));

// ---- Proposition II.1 ----------------------------------------------------

class PropositionII1 : public ::testing::Test {
 protected:
  FluidQueueSolver make_solver() const {
    Marginal m({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
    return FluidQueueSolver(m, pareto(0.015, 1.3, 10.0), 12.5, 6.25);
  }
};

TEST_F(PropositionII1, LowerBoundIncreasesInN) {
  auto s = make_solver();
  double prev = -1.0;
  for (std::size_t n : {2u, 5u, 10u, 30u, 80u}) {
    const auto snap = s.iterate_fixed(100, n);
    EXPECT_GE(snap.loss.lower, prev - 1e-13) << "n = " << n;
    prev = snap.loss.lower;
  }
}

TEST_F(PropositionII1, UpperBoundDecreasesInN) {
  auto s = make_solver();
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t n : {2u, 5u, 10u, 30u, 80u}) {
    const auto snap = s.iterate_fixed(100, n);
    EXPECT_LE(snap.loss.upper, prev + 1e-13) << "n = " << n;
    prev = snap.loss.upper;
  }
}

TEST_F(PropositionII1, LowerBoundIncreasesInM) {
  auto s = make_solver();
  double prev = -1.0;
  for (std::size_t m : {25u, 50u, 100u, 200u, 400u}) {
    const auto snap = s.iterate_fixed(m, 60);
    EXPECT_GE(snap.loss.lower, prev - 1e-12) << "M = " << m;
    prev = snap.loss.lower;
  }
}

TEST_F(PropositionII1, UpperBoundDecreasesInM) {
  auto s = make_solver();
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t m : {25u, 50u, 100u, 200u, 400u}) {
    const auto snap = s.iterate_fixed(m, 60);
    EXPECT_LE(snap.loss.upper, prev + 1e-12) << "M = " << m;
    prev = snap.loss.upper;
  }
}

TEST_F(PropositionII1, BoundsBracketAtEveryStage) {
  auto s = make_solver();
  for (std::size_t n : {1u, 5u, 30u})
    for (std::size_t m : {50u, 100u}) {
      const auto snap = s.iterate_fixed(m, n);
      EXPECT_LE(snap.loss.lower, snap.loss.upper) << "n=" << n << " M=" << m;
    }
}

TEST_F(PropositionII1, OccupancyPmfsAreProper) {
  auto s = make_solver();
  const auto snap = s.iterate_fixed(100, 30);
  ASSERT_EQ(snap.q_lower.size(), 101u);
  ASSERT_EQ(snap.q_upper.size(), 101u);
  EXPECT_NEAR(std::accumulate(snap.q_lower.begin(), snap.q_lower.end(), 0.0), 1.0, 1e-9);
  EXPECT_NEAR(std::accumulate(snap.q_upper.begin(), snap.q_upper.end(), 0.0), 1.0, 1e-9);
  // Q_L starts empty / Q_H full: the lower occupancy must be
  // stochastically below the upper one at every stage.
  double cdf_l = 0.0, cdf_h = 0.0;
  for (std::size_t j = 0; j < snap.q_lower.size(); ++j) {
    cdf_l += snap.q_lower[j];
    cdf_h += snap.q_upper[j];
    EXPECT_GE(cdf_l, cdf_h - 1e-9) << "bin " << j;
  }
}

// ---- Agreement with Monte Carlo ------------------------------------------

struct AgreementCase {
  double utilization;
  double cutoff;
  double buffer_seconds;
};

class SolverVsSimulation : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(SolverVsSimulation, SimulationFallsInOrNearBracket) {
  const auto& p = GetParam();
  Marginal m({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  const double c = m.mean() / p.utilization;
  const double B = p.buffer_seconds * c;
  auto d = pareto(0.015, 1.3, p.cutoff);

  FluidQueueSolver s(m, d, c, B);
  SolverConfig cfg;
  cfg.target_relative_gap = 0.05;
  cfg.max_bins = 1 << 13;
  auto r = s.solve(cfg);
  ASSERT_TRUE(r.converged);

  queueing::FluidSimConfig sim_cfg;
  sim_cfg.epochs = 1 << 22;
  sim_cfg.seed = 1234;
  auto sim = queueing::simulate_fluid_queue(m, *d, c, B, sim_cfg);

  const double slack = 4.0 * sim.loss_rate_stderr + 0.02 * r.loss.upper;
  EXPECT_GE(sim.loss_rate, r.loss.lower - slack);
  EXPECT_LE(sim.loss_rate, r.loss.upper + slack);
}

INSTANTIATE_TEST_SUITE_P(Regimes, SolverVsSimulation,
                         ::testing::Values(AgreementCase{0.8, 10.0, 0.5},
                                           AgreementCase{0.8, 1.0, 0.2},
                                           AgreementCase{0.9, 5.0, 0.3},
                                           AgreementCase{0.6, 20.0, 0.1},
                                           AgreementCase{0.8, 0.2, 0.05}));

// ---- Adaptive refinement and conventions ---------------------------------

TEST(Solver, RefinementTightensTheBracket) {
  Marginal m({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  FluidQueueSolver s(m, pareto(0.015, 1.3, 10.0), 12.5, 6.25);
  SolverConfig loose;
  loose.initial_bins = 32;
  loose.max_bins = 32;
  loose.target_relative_gap = 1e-4;  // unreachable at M = 32
  loose.max_iterations_per_level = 3000;
  loose.max_total_iterations = 3000;
  auto coarse = s.solve(loose);

  SolverConfig fine = loose;
  fine.max_bins = 2048;
  fine.target_relative_gap = 0.05;
  fine.max_total_iterations = 1000000;
  fine.max_iterations_per_level = 100000;
  auto refined = s.solve(fine);
  EXPECT_TRUE(refined.converged);
  EXPECT_GT(refined.final_bins, coarse.final_bins);
  EXPECT_LT(refined.loss.relative_gap(), coarse.loss.relative_gap());
  // Refined bracket sits inside the coarse one (monotonicity in M).
  EXPECT_GE(refined.loss.lower, coarse.loss.lower - 1e-12);
  EXPECT_LE(refined.loss.upper, coarse.loss.upper + 1e-12);
}

TEST(Solver, ZeroLossConvention) {
  // Tiny utilization and a huge buffer: upper bound dives below 1e-10 and
  // the solver reports zero by convention.
  Marginal m({1.0, 3.0}, {0.9, 0.1});
  FluidQueueSolver s(m, pareto(0.1, 1.5, 0.5), 12.0, 100.0);
  auto r = s.solve();
  EXPECT_TRUE(r.zero_loss);
  EXPECT_DOUBLE_EQ(r.loss_estimate(), 0.0);
}

TEST(Solver, MeanQueueBoundsAreOrdered) {
  Marginal m({2.0, 6.0, 10.0, 14.0}, {0.25, 0.25, 0.25, 0.25});
  FluidQueueSolver s(m, pareto(0.02, 1.4, 5.0), 10.0, 3.0);
  auto r = s.solve();
  EXPECT_LE(r.mean_queue_lower, r.mean_queue_upper + 1e-12);
  EXPECT_GE(r.mean_queue_lower, 0.0);
  EXPECT_LE(r.mean_queue_upper, 3.0 + 1e-12);
}

TEST(Solver, OverflowKernelClampsToBuffer) {
  Marginal m({0.0, 4.0}, {0.5, 0.5});
  FluidQueueSolver s(m, pareto(0.1, 1.5, 10.0), 2.0, 1.0);
  EXPECT_DOUBLE_EQ(s.overflow_kernel(1.0), s.overflow_kernel(100.0));
  EXPECT_GT(s.overflow_kernel(1.0), s.overflow_kernel(0.0));
}

TEST(Solver, LossDecreasesWithBuffer) {
  Marginal m({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  auto d = pareto(0.015, 1.3, 2.0);
  double prev = 1.0;
  for (double b : {0.05, 0.2, 0.8, 2.0}) {
    FluidQueueSolver s(m, d, 12.5, b * 12.5);
    SolverConfig cfg;
    cfg.target_relative_gap = 0.05;
    const double l = s.solve(cfg).loss_estimate();
    EXPECT_LE(l, prev * 1.02) << "buffer " << b;
    prev = l;
  }
}

TEST(Solver, LossIncreasesWithCutoff) {
  // More correlation (longer cutoff) cannot decrease loss.
  Marginal m({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  double prev = 0.0;
  for (double tc : {0.1, 0.5, 2.0, 10.0, 50.0}) {
    FluidQueueSolver s(m, pareto(0.015, 1.3, tc), 12.5, 6.25);
    SolverConfig cfg;
    cfg.target_relative_gap = 0.05;
    const double l = s.solve(cfg).loss_estimate();
    EXPECT_GE(l, prev * 0.98) << "cutoff " << tc;
    prev = l;
  }
}

TEST(Solver, WorksWithExponentialEpochs) {
  // The solver is model-independent (Section IV): exponential epochs give
  // a valid bracket too, cross-checked by simulation.
  Marginal m({0.0, 10.0}, {0.5, 0.5});
  auto d = std::make_shared<const dist::ExponentialEpoch>(10.0);
  FluidQueueSolver s(m, d, 6.0, 2.0);
  SolverConfig cfg;
  cfg.target_relative_gap = 0.05;
  auto r = s.solve(cfg);
  ASSERT_TRUE(r.converged);
  queueing::FluidSimConfig sim_cfg;
  sim_cfg.epochs = 1 << 22;
  auto sim = queueing::simulate_fluid_queue(m, *d, 6.0, 2.0, sim_cfg);
  EXPECT_GE(sim.loss_rate, r.loss.lower - 4.0 * sim.loss_rate_stderr);
  EXPECT_LE(sim.loss_rate, r.loss.upper + 4.0 * sim.loss_rate_stderr);
}

// Reference epoch step for one chain: the pre-batching implementation
// (independent cached convolution, then fold + clamp + renormalize),
// kept here as the parity baseline for DualFoldEngine.
void sequential_fold_step(const numerics::CachedKernelConvolver& conv, std::vector<double>& q,
                          std::size_t bins) {
  const auto u = conv.convolve(q);
  std::vector<double> next(bins + 1, 0.0);
  numerics::CompensatedSum at_zero, at_buffer;
  for (std::size_t k = 0; k <= bins; ++k) at_zero.add(u[k]);
  for (std::size_t k = 2 * bins; k < u.size(); ++k) at_buffer.add(u[k]);
  for (std::size_t j = 1; j < bins; ++j) next[j] = u[bins + j];
  next[0] = at_zero.value();
  next[bins] = at_buffer.value();
  double total = 0.0;
  for (double& p : next) {
    if (p < 0.0) p = 0.0;
    total += p;
  }
  if (total > 0.0)
    for (double& p : next) p /= total;
  q = std::move(next);
}

TEST(SolverFoldEngine, MatchesSequentialPerChainBaseline) {
  // The batched dual-chain step must reproduce the two independent
  // per-chain steps it replaced, epoch by epoch.
  Marginal m({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  FluidQueueSolver s(m, pareto(0.015, 1.3, 10.0), 12.5, 6.25);
  const std::size_t bins = 96;
  const auto wl = s.increment_pmf_lower(bins);
  const auto wh = s.increment_pmf_upper(bins);

  queueing::DualFoldEngine engine(wl, wh, bins);
  std::vector<double> q_low(bins + 1, 0.0), q_high(bins + 1, 0.0);
  q_low[0] = 1.0;
  q_high[bins] = 1.0;
  std::vector<double> ref_low = q_low, ref_high = q_high;
  const numerics::CachedKernelConvolver conv_low(wl, bins + 1), conv_high(wh, bins + 1);

  queueing::StepHealth low_health, high_health;
  for (std::size_t step = 0; step < 64; ++step) {
    engine.step(q_low, q_high, low_health, high_health);
    sequential_fold_step(conv_low, ref_low, bins);
    sequential_fold_step(conv_high, ref_high, bins);
  }
  EXPECT_TRUE(low_health.finite);
  EXPECT_TRUE(high_health.finite);
  for (std::size_t j = 0; j <= bins; ++j) {
    EXPECT_NEAR(q_low[j], ref_low[j], 1e-10) << "low bin " << j;
    EXPECT_NEAR(q_high[j], ref_high[j], 1e-10) << "high bin " << j;
  }
}

TEST(SolverFoldEngine, RejectsMalformedInputs) {
  const std::vector<double> w(2 * 8 + 1, 1.0 / 17.0);
  EXPECT_THROW(queueing::DualFoldEngine(w, w, 0), std::invalid_argument);
  EXPECT_THROW(queueing::DualFoldEngine(w, w, 9), std::invalid_argument);
  queueing::DualFoldEngine engine(w, w, 8);
  std::vector<double> q_ok(9, 1.0 / 9.0), q_bad(5, 0.2);
  queueing::StepHealth a, b;
  EXPECT_THROW(engine.step(q_bad, q_ok, a, b), std::invalid_argument);
  EXPECT_THROW(engine.step(q_ok, q_bad, a, b), std::invalid_argument);
}

TEST(SolverFoldEngine, SplitModeMatchesSequentialBaseline) {
  // Forcing split mode (min_bins_for_mt = 0) must still reproduce the
  // per-chain sequential step — the layouts may differ in transform
  // shape but not in the folded pmfs.
  Marginal m({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  FluidQueueSolver s(m, pareto(0.015, 1.3, 10.0), 12.5, 6.25);
  const std::size_t bins = 96;
  const auto wl = s.increment_pmf_lower(bins);
  const auto wh = s.increment_pmf_upper(bins);

  queueing::DualFoldEngine engine(wl, wh, bins, queueing::FoldConcurrency{1, 0});
  ASSERT_TRUE(engine.split_mode());
  std::vector<double> q_low(bins + 1, 0.0), q_high(bins + 1, 0.0);
  q_low[0] = 1.0;
  q_high[bins] = 1.0;
  std::vector<double> ref_low = q_low, ref_high = q_high;
  const numerics::CachedKernelConvolver conv_low(wl, bins + 1), conv_high(wh, bins + 1);

  queueing::StepHealth low_health, high_health;
  for (std::size_t step = 0; step < 64; ++step) {
    engine.step(q_low, q_high, low_health, high_health);
    sequential_fold_step(conv_low, ref_low, bins);
    sequential_fold_step(conv_high, ref_high, bins);
  }
  for (std::size_t j = 0; j <= bins; ++j) {
    EXPECT_NEAR(q_low[j], ref_low[j], 1e-10) << "low bin " << j;
    EXPECT_NEAR(q_high[j], ref_high[j], 1e-10) << "high bin " << j;
  }
}

TEST(SolverFoldEngine, SplitModeBracketsAreThreadCountInvariant) {
  // The reproducibility contract: thread count picks only where the two
  // chains run, never the arithmetic, so the solver brackets must be
  // bit-identical between a pinned single-thread engine and a
  // multi-worker one. Runs under TSan in CI (Solver* filter).
  Marginal m({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  FluidQueueSolver s(m, pareto(0.015, 1.3, 10.0), 12.5, 6.25);
  const std::size_t bins = 96;
  const auto wl = s.increment_pmf_lower(bins);
  const auto wh = s.increment_pmf_upper(bins);

  queueing::DualFoldEngine pinned(wl, wh, bins, queueing::FoldConcurrency{1, 0});
  queueing::DualFoldEngine pooled(wl, wh, bins, queueing::FoldConcurrency{4, 0});
  ASSERT_TRUE(pinned.split_mode());
  ASSERT_TRUE(pooled.split_mode());
  EXPECT_EQ(pooled.threads(), 4u);

  std::vector<double> a_low(bins + 1, 0.0), a_high(bins + 1, 0.0);
  a_low[0] = 1.0;
  a_high[bins] = 1.0;
  std::vector<double> b_low = a_low, b_high = a_high;
  queueing::StepHealth ha1, ha2, hb1, hb2;
  for (std::size_t step = 0; step < 48; ++step) {
    pinned.step(a_low, a_high, ha1, ha2);
    pooled.step(b_low, b_high, hb1, hb2);
  }
  for (std::size_t j = 0; j <= bins; ++j) {
    EXPECT_EQ(a_low[j], b_low[j]) << "low bin " << j;
    EXPECT_EQ(a_high[j], b_high[j]) << "high bin " << j;
  }
}

TEST(SolverFoldEngine, SplitModeSingleThreadStepIsAllocationFree) {
  // Split mode with threads == 1 runs both chains inline on the caller
  // thread through preallocated workspaces: the packed path's
  // zero-allocation guarantee carries over.
  Marginal m({0.0, 3.0}, {2.0 / 3.0, 1.0 / 3.0});
  FluidQueueSolver s(m, std::make_shared<const dist::DeterministicEpoch>(1.0), 2.0, 1.0);
  const std::size_t bins = 128;
  queueing::DualFoldEngine engine(s.increment_pmf_lower(bins), s.increment_pmf_upper(bins), bins,
                                  queueing::FoldConcurrency{1, 0});
  ASSERT_TRUE(engine.split_mode());
  std::vector<double> q_low(bins + 1, 0.0), q_high(bins + 1, 0.0);
  q_low[0] = 1.0;
  q_high[bins] = 1.0;
  queueing::StepHealth low_health, high_health;
  for (int i = 0; i < 4; ++i) engine.step(q_low, q_high, low_health, high_health);

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 16; ++i) engine.step(q_low, q_high, low_health, high_health);
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "steady-state split epoch loop allocated";
}

TEST(SolverFoldEngine, SteadyStateStepIsAllocationFree) {
  // The acceptance criterion of the zero-allocation engine: once the
  // engine and its workspaces exist (and the FFT plans are cached), the
  // epoch loop must not touch the heap at all.
  Marginal m({0.0, 3.0}, {2.0 / 3.0, 1.0 / 3.0});
  FluidQueueSolver s(m, std::make_shared<const dist::DeterministicEpoch>(1.0), 2.0, 1.0);
  const std::size_t bins = 128;
  queueing::DualFoldEngine engine(s.increment_pmf_lower(bins), s.increment_pmf_upper(bins), bins);
  std::vector<double> q_low(bins + 1, 0.0), q_high(bins + 1, 0.0);
  q_low[0] = 1.0;
  q_high[bins] = 1.0;
  queueing::StepHealth low_health, high_health;
  // Warm up: first steps run with everything already sized, but make sure
  // any lazy one-time work (plan cache inserts) has happened.
  for (int i = 0; i < 4; ++i) engine.step(q_low, q_high, low_health, high_health);

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 16; ++i) engine.step(q_low, q_high, low_health, high_health);
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "steady-state epoch loop allocated";
}

}  // namespace
