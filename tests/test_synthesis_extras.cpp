// Tests for the Whittle estimator, Durbin-Levinson / FARIMA synthesis,
// the chaotic-map source and the source shaper.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/hurst.hpp"
#include "analysis/whittle.hpp"
#include "numerics/random.hpp"
#include "test_helpers.hpp"
#include "traffic/chaotic_map.hpp"
#include "traffic/fgn.hpp"
#include "traffic/gaussian_synthesis.hpp"
#include "traffic/smoother.hpp"
#include "traffic/synthetic_traces.hpp"

namespace {

using namespace lrd;

// ---- Whittle ---------------------------------------------------------------

TEST(FgnSpectralDensity, Validation) {
  EXPECT_THROW(analysis::fgn_spectral_density(0.0, 0.8), std::invalid_argument);
  EXPECT_THROW(analysis::fgn_spectral_density(4.0, 0.8), std::invalid_argument);
  EXPECT_THROW(analysis::fgn_spectral_density(1.0, 1.0), std::invalid_argument);
}

TEST(FgnSpectralDensity, IntegratesToUnitVariance) {
  // gamma(0) = int_{-pi}^{pi} f = 2 int_0^pi f must equal 1. The density
  // has an integrable w^{1-2H} singularity at the origin, so integrate in
  // u = log w, where the integrand c e^{(2-2H) u} is smooth.
  for (double h : {0.6, 0.75, 0.9}) {
    const double integral = 2.0 * lrd::testing::simpson(
        [h](double u) {
          const double w = std::exp(u);
          return analysis::fgn_spectral_density(w, h) * w;
        },
        std::log(1e-14), std::log(std::numbers::pi), 40000);
    EXPECT_NEAR(integral, 1.0, 0.01) << "H = " << h;
  }
}

TEST(FgnSpectralDensity, DivergesAtOriginForLrd) {
  // f(w) ~ w^{1-2H}: for H = 0.8 the ratio over three decades is
  // (1e-3)^{1-2H} = 10^{1.8} ~ 63.
  const double ratio = analysis::fgn_spectral_density(1e-4, 0.8) /
                       analysis::fgn_spectral_density(0.1, 0.8);
  EXPECT_NEAR(ratio, std::pow(1e-3, 1.0 - 1.6), 0.15 * ratio);
  // And the local slope matches 1 - 2H.
  const double h = 0.85;
  const double slope = std::log(analysis::fgn_spectral_density(2e-4, h) /
                                analysis::fgn_spectral_density(1e-4, h)) /
                       std::log(2.0);
  EXPECT_NEAR(slope, 1.0 - 2.0 * h, 0.02);
}

class WhittleRecovery : public ::testing::TestWithParam<double> {};

TEST_P(WhittleRecovery, RecoversHurstOfFgn) {
  const double h = GetParam();
  numerics::Rng rng(static_cast<std::uint64_t>(h * 10000));
  auto x = traffic::generate_fgn(1 << 15, h, rng);
  const auto est = analysis::hurst_whittle(x);
  EXPECT_NEAR(est.hurst, h, 0.03) << "Whittle is the paper's named estimator";
}

INSTANTIATE_TEST_SUITE_P(HurstValues, WhittleRecovery,
                         ::testing::Values(0.55, 0.7, 0.83, 0.9));

TEST(Whittle, WhiteNoiseIsHalf) {
  numerics::Rng rng(42);
  std::vector<double> x(1 << 14);
  for (auto& v : x) v = rng.normal();
  EXPECT_NEAR(analysis::hurst_whittle(x).hurst, 0.5, 0.03);
}

TEST(Whittle, ShortSeriesRejected) {
  std::vector<double> tiny(100, 1.0);
  EXPECT_THROW(analysis::hurst_whittle(tiny), std::invalid_argument);
}

TEST(Whittle, MtvTraceMatchesCalibration) {
  const auto est = analysis::hurst_whittle(traffic::mtv_trace());
  EXPECT_NEAR(est.hurst, 0.83, 0.05);
}

// ---- Durbin-Levinson / FARIMA ----------------------------------------------

TEST(DurbinLevinson, Validation) {
  numerics::Rng rng(1);
  EXPECT_THROW(traffic::sample_gaussian_from_acf({1.0}, 2, rng), std::invalid_argument);
  EXPECT_THROW(traffic::sample_gaussian_from_acf({0.0, 0.0}, 2, rng), std::domain_error);
  // Non-positive-definite sequence: |gamma(1)| > gamma(0).
  EXPECT_THROW(traffic::sample_gaussian_from_acf({1.0, 1.5, 0.0}, 3, rng), std::domain_error);
}

TEST(DurbinLevinson, WhiteNoiseCase) {
  numerics::Rng rng(2);
  std::vector<double> acov(1024, 0.0);
  acov[0] = 4.0;
  auto x = traffic::sample_gaussian_from_acf(acov, 1024, rng);
  double s2 = 0.0;
  for (double v : x) s2 += v * v;
  EXPECT_NEAR(s2 / 1024.0, 4.0, 0.6);
}

TEST(DurbinLevinson, Ar1CovarianceIsReproduced) {
  // gamma(k) = phi^k / (1 - phi^2) is the AR(1) autocovariance.
  const double phi = 0.7;
  const std::size_t n = 4096;
  std::vector<double> acov(n);
  for (std::size_t k = 0; k < n; ++k)
    acov[k] = std::pow(phi, static_cast<double>(k)) / (1.0 - phi * phi);
  numerics::Rng rng(3);
  auto x = traffic::sample_gaussian_from_acf(acov, n, rng);
  // Uncentered lag-1 correlation should be ~phi.
  double c0 = 0.0, c1 = 0.0;
  for (std::size_t t = 0; t + 1 < n; ++t) {
    c0 += x[t] * x[t];
    c1 += x[t] * x[t + 1];
  }
  EXPECT_NEAR(c1 / c0, phi, 0.04);
}

TEST(DurbinLevinson, MatchesDaviesHarteForFgn) {
  // Two exact generators of the same process: their sample ACFs at small
  // lags must agree within Monte-Carlo error.
  const double h = 0.8;
  const std::size_t n = 8192;
  std::vector<double> acov(n);
  for (std::size_t k = 0; k < n; ++k) acov[k] = traffic::fgn_autocovariance(h, k);
  numerics::Rng rng_dl(4), rng_dh(5);
  auto x_dl = traffic::sample_gaussian_from_acf(acov, n, rng_dl);
  auto x_dh = traffic::generate_fgn(n, h, rng_dh);

  auto lag1 = [](const std::vector<double>& x) {
    double c0 = 0.0, c1 = 0.0;
    for (std::size_t t = 0; t + 1 < x.size(); ++t) {
      c0 += x[t] * x[t];
      c1 += x[t] * x[t + 1];
    }
    return c1 / c0;
  };
  EXPECT_NEAR(lag1(x_dl), traffic::fgn_autocovariance(h, 1), 0.05);
  EXPECT_NEAR(lag1(x_dl), lag1(x_dh), 0.08);
}

TEST(Farima, AutocovarianceStructure) {
  EXPECT_THROW(traffic::farima_autocovariance(0.5, 10), std::invalid_argument);
  auto g = traffic::farima_autocovariance(0.3, 4096);
  // gamma(0) = Gamma(0.4)/Gamma(0.7)^2.
  EXPECT_NEAR(g[0], std::tgamma(0.4) / std::pow(std::tgamma(0.7), 2.0), 1e-12);
  // Hyperbolic tail: gamma(k) ~ k^{2d-1} => ratio at doubled lag 2^{2d-1}.
  EXPECT_NEAR(g[4000] / g[2000], std::pow(2.0, 2.0 * 0.3 - 1.0), 0.01);
  // d < 0 gives negative lag-1 covariance (antipersistent).
  auto neg = traffic::farima_autocovariance(-0.2, 4);
  EXPECT_LT(neg[1], 0.0);
}

TEST(Farima, GeneratedSeriesHasTargetHurst) {
  const double d = 0.35;  // H = 0.85
  numerics::Rng rng(6);
  auto x = traffic::generate_farima(1 << 13, d, rng);
  const auto est = analysis::hurst_wavelet(x);
  EXPECT_NEAR(est.hurst, d + 0.5, 0.08);
}

// ---- Chaotic map -----------------------------------------------------------

TEST(ChaoticMap, Validation) {
  traffic::ChaoticMapConfig bad;
  bad.m = 3.0;
  EXPECT_THROW(traffic::generate_chaotic_map_trace(bad, 10, 0.1), std::invalid_argument);
  bad = traffic::ChaoticMapConfig{};
  bad.d = 1.5;
  EXPECT_THROW(traffic::generate_chaotic_map_trace(bad, 10, 0.1), std::invalid_argument);
  EXPECT_THROW(traffic::chaotic_map_hurst(1.2), std::invalid_argument);
  EXPECT_NEAR(traffic::chaotic_map_hurst(1.8), (3.0 * 1.8 - 4.0) / (2.0 * 0.8), 1e-12);
}

TEST(ChaoticMap, TrajectoryStaysInUnitInterval) {
  traffic::ChaoticMapConfig cfg;
  double x = cfg.x0;
  for (int i = 0; i < 100000; ++i) {
    x = traffic::chaotic_map_step(x, cfg);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(ChaoticMap, EmitsOnOffTrace) {
  traffic::ChaoticMapConfig cfg;
  cfg.peak_rate = 5.0;
  auto trace = traffic::generate_chaotic_map_trace(cfg, 1 << 15, 0.01);
  double on = 0.0;
  for (double r : trace.rates()) {
    ASSERT_TRUE(r == 0.0 || r == 5.0);
    if (r > 0.0) on += 1.0;
  }
  const double frac = on / static_cast<double>(trace.size());
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.98);
}

TEST(ChaoticMap, IntermittencyProducesLongMemory) {
  traffic::ChaoticMapConfig cfg;
  cfg.m = 1.9;
  cfg.epsilon = 1e-6;  // weaker perturbation -> longer off sojourns
  auto trace = traffic::generate_chaotic_map_trace(cfg, 1 << 18, 0.01);
  const double h = analysis::hurst_variance_time(trace).hurst;
  // The same map with m well below the LRD regime stays near H = 1/2.
  traffic::ChaoticMapConfig srd = cfg;
  srd.m = 1.1;
  srd.epsilon = 1e-3;
  auto srd_trace = traffic::generate_chaotic_map_trace(srd, 1 << 18, 0.01);
  const double h_srd = analysis::hurst_variance_time(srd_trace).hurst;
  EXPECT_GT(h, 0.6) << "intermittent map sojourns must induce LRD";
  EXPECT_GT(h, h_srd + 0.05);
}

TEST(ChaoticMap, DeterministicGivenInitialCondition) {
  traffic::ChaoticMapConfig cfg;
  auto a = traffic::generate_chaotic_map_trace(cfg, 512, 0.01);
  auto b = traffic::generate_chaotic_map_trace(cfg, 512, 0.01);
  for (std::size_t i = 0; i < 512; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

// ---- Shaper ----------------------------------------------------------------

TEST(Shaper, Validation) {
  traffic::RateTrace t({1.0, 2.0}, 0.1);
  EXPECT_THROW(traffic::shape_trace(t, 0.0), std::invalid_argument);
}

TEST(Shaper, CapsTheOutputAndConservesWork) {
  traffic::RateTrace t({10.0, 0.0, 6.0, 2.0, 8.0, 0.0, 0.0}, 0.5);
  const auto r = traffic::shape_trace(t, 5.0);
  EXPECT_LE(r.output.max(), 5.0 + 1e-12);
  EXPECT_NEAR(r.output.total_work() + r.final_backlog, t.total_work(), 1e-12);
  EXPECT_GT(r.max_backlog, 0.0);
  EXPECT_DOUBLE_EQ(r.max_delay, r.max_backlog / 5.0);
}

TEST(Shaper, GenerousCapIsTransparent) {
  traffic::RateTrace t({1.0, 3.0, 2.0}, 0.1);
  const auto r = traffic::shape_trace(t, 10.0);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(r.output[i], t[i]);
  EXPECT_DOUBLE_EQ(r.max_backlog, 0.0);
}

TEST(Shaper, NarrowsTheMarginal) {
  numerics::Rng rng(7);
  auto z = traffic::generate_fgn(1 << 14, 0.85, rng);
  for (double& v : z) v = std::exp(0.4 * v) * 5.0;
  traffic::RateTrace t(z, 0.01);
  const double cap = 1.3 * t.mean();
  const auto r = traffic::shape_trace(t, cap);
  EXPECT_LT(r.output.variance(), t.variance());
  EXPECT_LE(r.output.max(), cap + 1e-9);
  // Work conserved up to the final backlog.
  EXPECT_NEAR(r.output.total_work() + r.final_backlog, t.total_work(), 1e-6 * t.total_work());
}

TEST(Shaper, CapForMaxDelayMeetsTheBound) {
  numerics::Rng rng(8);
  auto z = traffic::generate_fgn(1 << 14, 0.8, rng);
  for (double& v : z) v = std::exp(0.3 * v) * 4.0;
  traffic::RateTrace t(z, 0.01);
  const double cap = traffic::cap_for_max_delay(t, 0.25);
  EXPECT_LE(traffic::shape_trace(t, cap).max_delay, 0.25 + 1e-9);
  // And it is not wastefully large: 1% below it the bound breaks (or the
  // cap is already at the mean-rate floor).
  if (cap > t.mean() * 1.02) {
    EXPECT_GT(traffic::shape_trace(t, cap * 0.97).max_delay, 0.25);
  }
}

}  // namespace
