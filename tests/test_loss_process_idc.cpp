// Tests for the loss-process analysis (run statistics, FEC/ARQ metrics)
// and the index of dispersion for counts.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/idc.hpp"
#include "analysis/loss_process.hpp"
#include "numerics/random.hpp"
#include "traffic/fgn.hpp"
#include "traffic/shuffle.hpp"

namespace {

using namespace lrd;

TEST(LossRuns, EmptyAndAllClear) {
  auto s = analysis::loss_run_stats({});
  EXPECT_EQ(s.losses, 0u);
  EXPECT_EQ(s.bursts, 0u);
  auto clear = analysis::loss_run_stats({false, false, false});
  EXPECT_EQ(clear.losses, 0u);
  EXPECT_DOUBLE_EQ(clear.loss_fraction, 0.0);
}

TEST(LossRuns, CountsBurstsAndLengths) {
  // 1 1 0 1 0 0 1 1 1 -> 3 bursts, 6 losses, mean 2, max 3.
  std::vector<bool> lost{true, true, false, true, false, false, true, true, true};
  auto s = analysis::loss_run_stats(lost);
  EXPECT_EQ(s.losses, 6u);
  EXPECT_EQ(s.bursts, 3u);
  EXPECT_DOUBLE_EQ(s.mean_burst, 2.0);
  EXPECT_EQ(s.max_burst, 3u);
  EXPECT_NEAR(s.loss_fraction, 6.0 / 9.0, 1e-15);
}

TEST(LossRuns, TrailingBurstIsCounted) {
  auto s = analysis::loss_run_stats({false, true, true});
  EXPECT_EQ(s.bursts, 1u);
  EXPECT_EQ(s.max_burst, 2u);
}

TEST(Fec, PerfectRecoveryBelowThreshold) {
  // 2 losses in a 10-slot block, k_max = 2 -> everything recovered.
  std::vector<bool> lost(10, false);
  lost[3] = lost[7] = true;
  EXPECT_DOUBLE_EQ(analysis::fec_residual_loss(lost, 10, 2), 0.0);
  // k_max = 1 -> the block is unrecoverable: 2/10 residual.
  EXPECT_DOUBLE_EQ(analysis::fec_residual_loss(lost, 10, 1), 0.2);
}

TEST(Fec, BurstsConcentrateDamage) {
  // Same number of losses; spread vs concentrated. Block 4, k_max 1.
  std::vector<bool> spread{true, false, false, false, true, false, false, false};
  std::vector<bool> burst{true, true, false, false, false, false, false, false};
  EXPECT_DOUBLE_EQ(analysis::fec_residual_loss(spread, 4, 1), 0.0);
  EXPECT_DOUBLE_EQ(analysis::fec_residual_loss(burst, 4, 1), 0.25);
}

TEST(Fec, PartialFinalBlock) {
  std::vector<bool> lost{false, false, false, true, true};  // block 3 -> final block {t,t}
  EXPECT_DOUBLE_EQ(analysis::fec_residual_loss(lost, 3, 1), 0.4);
  EXPECT_DOUBLE_EQ(analysis::fec_residual_loss(lost, 3, 2), 0.0);
  EXPECT_THROW(analysis::fec_residual_loss(lost, 0, 1), std::invalid_argument);
}

TEST(Arq, FeedbackPerLossFavorsBursts) {
  std::vector<bool> spread{true, false, true, false, true, false};
  std::vector<bool> burst{true, true, true, false, false, false};
  EXPECT_DOUBLE_EQ(analysis::arq_feedback_per_loss(spread), 1.0);
  EXPECT_NEAR(analysis::arq_feedback_per_loss(burst), 1.0 / 3.0, 1e-15);
  EXPECT_DOUBLE_EQ(analysis::arq_feedback_per_loss({false, false}), 0.0);
}

TEST(LossIndicators, MatchQueueOverflowSlots) {
  // Constant overload: after the fill time every slot loses.
  traffic::RateTrace t(std::vector<double>(100, 6.0), 0.1);
  auto lost = analysis::loss_indicators(t, 6.0 / 9.0, 2.0 / 9.0);  // c = 9, B = 2
  // net gain 0.3 Mb per slot minus... rate 6, c 9 -> never loses.
  for (bool l : lost) EXPECT_FALSE(l);
  EXPECT_THROW(analysis::loss_indicators(t, 1.5, 0.1), std::invalid_argument);
}

TEST(LossIndicators, CorrelatedInputYieldsBurstierLosses) {
  // The conclusion's premise: with correlation, losses cluster; after a
  // full shuffle (same marginal), they spread out.
  numerics::Rng rng(11);
  auto z = traffic::generate_fgn(1 << 16, 0.9, rng);
  for (double& v : z) v = std::exp(0.4 * v);
  traffic::RateTrace lrd_trace(z, 0.01);
  numerics::Rng srng(12);
  auto iid_trace = traffic::full_shuffle(lrd_trace, srng);

  // High utilization and a small buffer so even the smoothed-out i.i.d.
  // surrogate loses regularly.
  auto lost_lrd = analysis::loss_indicators(lrd_trace, 0.95, 0.01);
  auto lost_iid = analysis::loss_indicators(iid_trace, 0.95, 0.01);
  auto s_lrd = analysis::loss_run_stats(lost_lrd);
  auto s_iid = analysis::loss_run_stats(lost_iid);
  ASSERT_GT(s_lrd.losses, 100u);
  ASSERT_GT(s_iid.losses, 100u);
  EXPECT_GT(s_lrd.mean_burst, s_iid.mean_burst);
}

TEST(Idc, FlatForWhiteNoise) {
  numerics::Rng rng(21);
  std::vector<double> x(1 << 15);
  for (auto& v : x) v = std::exp(0.3 * rng.normal());
  traffic::RateTrace t(x, 0.01);
  auto curve = analysis::idc_curve(t);
  ASSERT_GE(curve.size(), 3u);
  // IDC roughly constant: last/first within a factor ~2.
  const double ratio = curve.back().idc / curve.front().idc;
  EXPECT_LT(ratio, 2.5);
  EXPECT_GT(ratio, 0.4);
}

TEST(Idc, GrowsForLrdTraffic) {
  numerics::Rng rng(22);
  auto z = traffic::generate_fgn(1 << 17, 0.85, rng);
  for (double& v : z) v = std::exp(0.3 * v);
  traffic::RateTrace t(z, 0.01);
  auto curve = analysis::idc_curve(t);
  EXPECT_GT(curve.back().idc, 4.0 * curve.front().idc);
}

TEST(Idc, HurstFromIdcRecoversH) {
  numerics::Rng rng(23);
  auto z = traffic::generate_fgn(1 << 17, 0.8, rng);
  for (double& v : z) v += 5.0;  // positive rates
  for (double& v : z) v = std::max(v, 0.0);
  traffic::RateTrace t(z, 0.01);
  const auto est = analysis::hurst_from_idc(t);
  EXPECT_NEAR(est.hurst, 0.8, 0.1);
}

TEST(Idc, Validation) {
  traffic::RateTrace tiny(std::vector<double>(16, 1.0), 0.01);
  EXPECT_THROW(analysis::idc_curve(tiny), std::invalid_argument);
}

}  // namespace
