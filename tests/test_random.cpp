#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "numerics/random.hpp"

namespace {

using namespace lrd::numerics;

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double mn = 1.0, mx = 0.0, sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 0.005);
  EXPECT_LT(mn, 0.001);
  EXPECT_GT(mx, 0.999);
}

TEST(Rng, UniformOpenNeverZero) {
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) ASSERT_GT(rng.uniform_open(), 0.0);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  const int n = 140000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 7, 5 * std::sqrt(n / 7.0));
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 400000;
  double s = 0.0, s2 = 0.0, s3 = 0.0, s4 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x; s2 += x * x; s3 += x * x * x; s4 += x * x * x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.01);
  EXPECT_NEAR(s2 / n, 1.0, 0.02);
  EXPECT_NEAR(s3 / n, 0.0, 0.05);
  EXPECT_NEAR(s4 / n, 3.0, 0.1);
}

TEST(Rng, NormalAffine) {
  Rng rng(17);
  const int n = 200000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    s += x; s2 += x * x;
  }
  const double mean = s / n;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(s2 / n - mean * mean, 4.0, 0.08);
}

TEST(Rng, ExponentialMoments) {
  Rng rng(19);
  const int n = 300000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GE(x, 0.0);
    s += x; s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.5, 0.01);
  EXPECT_NEAR(s2 / n, 0.5, 0.02);  // E[X^2] = 2 / rate^2
}

TEST(Rng, ParetoTailExponent) {
  Rng rng(23);
  const int n = 300000;
  int exceed2 = 0, exceed4 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(1.0, 1.5);
    ASSERT_GE(x, 1.0);
    if (x > 2.0) ++exceed2;
    if (x > 4.0) ++exceed4;
  }
  // ccdf(x) = x^-1.5: Pr{X>2} = 2^-1.5, Pr{X>4} = 4^-1.5.
  EXPECT_NEAR(exceed2 / static_cast<double>(n), std::pow(2.0, -1.5), 0.01);
  EXPECT_NEAR(exceed4 / static_cast<double>(n), std::pow(4.0, -1.5), 0.01);
}

TEST(Rng, LognormalMean) {
  Rng rng(29);
  const int n = 400000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += rng.lognormal(0.0, 0.5);
  EXPECT_NEAR(s / n, std::exp(0.125), 0.02);  // E = exp(mu + sigma^2/2)
}

TEST(AliasTable, ValidatesInput) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
}

TEST(AliasTable, MatchesTargetFrequencies) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  AliasTable table(w);
  Rng rng(31);
  std::vector<int> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_NEAR(counts[k] / static_cast<double>(n), w[k] / 10.0, 0.005) << "state " << k;
}

TEST(AliasTable, SingletonAlwaysZero) {
  AliasTable table({5.0});
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  AliasTable table({1.0, 0.0, 1.0});
  Rng rng(41);
  for (int i = 0; i < 50000; ++i) EXPECT_NE(table.sample(rng), 1u);
}

TEST(RandomPermutation, IsAPermutation) {
  Rng rng(43);
  auto perm = random_permutation(100, rng);
  auto sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RandomPermutation, UniformFirstElement) {
  Rng rng(47);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[random_permutation(5, rng)[0]];
  for (int c : counts) EXPECT_NEAR(c, n / 5, 5 * std::sqrt(n / 5.0));
}

TEST(RandomPermutation, EdgeCases) {
  Rng rng(53);
  EXPECT_TRUE(random_permutation(0, rng).empty());
  auto one = random_permutation(1, rng);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

}  // namespace
