#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "dist/marginal.hpp"
#include "dist/simple_epochs.hpp"
#include "numerics/random.hpp"
#include "queueing/solver.hpp"

namespace {

using lrd::dist::Marginal;

TEST(Marginal, ValidatesInput) {
  EXPECT_THROW(Marginal({}, {}), std::invalid_argument);
  EXPECT_THROW(Marginal({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Marginal({-1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Marginal({1.0}, {-0.5}), std::invalid_argument);
  EXPECT_THROW(Marginal({1.0, 2.0}, {0.0, 0.0}), std::invalid_argument);
}

TEST(Marginal, SortsAndNormalizes) {
  Marginal m({3.0, 1.0, 2.0}, {2.0, 2.0, 4.0});
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m.rates()[0], 1.0);
  EXPECT_DOUBLE_EQ(m.rates()[1], 2.0);
  EXPECT_DOUBLE_EQ(m.rates()[2], 3.0);
  EXPECT_NEAR(m.probs()[0], 0.25, 1e-15);
  EXPECT_NEAR(m.probs()[1], 0.5, 1e-15);
  EXPECT_NEAR(m.probs()[2], 0.25, 1e-15);
}

TEST(Marginal, MergesDuplicateRates) {
  Marginal m({2.0, 2.0, 5.0}, {0.25, 0.25, 0.5});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.probs()[0], 0.5);
}

TEST(Marginal, DropsZeroProbabilityStates) {
  Marginal m({1.0, 2.0, 3.0}, {0.5, 0.0, 0.5});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.rates()[1], 3.0);
}

TEST(Marginal, Moments) {
  Marginal m({0.0, 10.0}, {0.75, 0.25});
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
  EXPECT_DOUBLE_EQ(m.variance(), 18.75);  // p(1-p) * 100
  EXPECT_DOUBLE_EQ(m.stddev(), std::sqrt(18.75));
  EXPECT_DOUBLE_EQ(m.min_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.peak_rate(), 10.0);
}

TEST(Marginal, ConstantFactory) {
  auto m = Marginal::constant(7.0);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m.mean(), 7.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(Marginal, OnOffFactory) {
  auto m = Marginal::on_off(10.0, 0.3);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_THROW(Marginal::on_off(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Marginal::on_off(10.0, 1.0), std::invalid_argument);
}

TEST(Marginal, ServiceRateForUtilization) {
  Marginal m({4.0, 12.0}, {0.5, 0.5});  // mean 8
  EXPECT_DOUBLE_EQ(m.service_rate_for_utilization(0.8), 10.0);
  EXPECT_THROW(m.service_rate_for_utilization(0.0), std::invalid_argument);
  EXPECT_THROW(m.service_rate_for_utilization(1.0), std::invalid_argument);
}

class MarginalScaling : public ::testing::TestWithParam<double> {};

TEST_P(MarginalScaling, PreservesMeanScalesVariance) {
  const double a = GetParam();
  // min rate chosen so no factor in the sweep trips the clamp at zero.
  Marginal m({4.0, 6.0, 10.0, 14.0}, {0.1, 0.4, 0.4, 0.1});
  Marginal s = m.scaled(a);
  EXPECT_NEAR(s.mean(), m.mean(), 1e-12);
  EXPECT_NEAR(s.variance(), a * a * m.variance(), 1e-10);
  EXPECT_EQ(s.size(), m.size());
}

INSTANTIATE_TEST_SUITE_P(Factors, MarginalScaling, ::testing::Values(0.5, 0.8, 1.0, 1.2, 1.5));

TEST(Marginal, ScalingIdentityAtOne) {
  Marginal m({1.0, 3.0}, {0.5, 0.5});
  Marginal s = m.scaled(1.0);
  EXPECT_DOUBLE_EQ(s.rates()[0], 1.0);
  EXPECT_DOUBLE_EQ(s.rates()[1], 3.0);
}

TEST(Marginal, ScalingClampsNegativeRates) {
  // Widening can push the lowest rate below zero; it must clamp (rates
  // are fluid rates) and therefore shift the mean slightly upward.
  Marginal m({1.0, 9.0}, {0.5, 0.5});  // mean 5
  Marginal s = m.scaled(2.0);          // raw rates {-3, 13} -> {0, 13}
  EXPECT_DOUBLE_EQ(s.min_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.peak_rate(), 13.0);
  EXPECT_THROW(m.scaled(0.0), std::invalid_argument);
}

class MarginalSuperposition : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MarginalSuperposition, PreservesMeanDividesVariance) {
  const std::size_t n = GetParam();
  Marginal m({0.0, 5.0, 20.0}, {0.3, 0.5, 0.2});
  Marginal s = m.superposed(n);
  EXPECT_NEAR(s.mean(), m.mean(), 1e-6 * m.mean());
  // Averaging n iid streams divides the variance by n (up to lattice and
  // compression error).
  EXPECT_NEAR(s.variance(), m.variance() / static_cast<double>(n), 0.02 * m.variance());
  // Support shrinks toward the mean.
  EXPECT_GE(s.min_rate(), m.min_rate() - 1e-12);
  EXPECT_LE(s.peak_rate(), m.peak_rate() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Streams, MarginalSuperposition, ::testing::Values(1, 2, 3, 5, 8, 10));

TEST(Marginal, SuperposedOfConstantIsConstant) {
  auto m = Marginal::constant(4.0);
  auto s = m.superposed(6);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(Marginal, SuperposedValidation) {
  Marginal m({1.0, 2.0}, {0.5, 0.5});
  EXPECT_THROW(m.superposed(0), std::invalid_argument);
  EXPECT_THROW(m.superposed(2, 1), std::invalid_argument);
}

TEST(Marginal, SuperposedOutputSizeIsBounded) {
  Marginal m({0.0, 1.0, 2.0, 3.0, 4.0}, {0.2, 0.2, 0.2, 0.2, 0.2});
  auto s = m.superposed(10, 64);
  EXPECT_LE(s.size(), 64u + 1u);
  EXPECT_GE(s.size(), 16u);  // should not collapse to a handful of points
}

TEST(Marginal, SampleMatchesProbabilities) {
  Marginal m({1.0, 2.0, 3.0}, {0.2, 0.3, 0.5});
  lrd::numerics::Rng rng(77);
  std::vector<int> counts(3, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[m.sample_index(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.5, 0.01);
}

}  // namespace

namespace {

using lrd::dist::Marginal;

TEST(MarginalPolicing, ClipsRatesAboveCap) {
  Marginal m({1.0, 5.0, 9.0, 13.0}, {0.25, 0.25, 0.25, 0.25});
  Marginal p = m.policed(9.0);
  EXPECT_DOUBLE_EQ(p.peak_rate(), 9.0);
  // Mass of 9 and 13 merges onto the cap.
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p.probs()[2], 0.5);
  // Policing lowers the mean (unlike scaled()).
  EXPECT_LT(p.mean(), m.mean());
  EXPECT_NEAR(p.mean(), 0.25 * (1.0 + 5.0 + 9.0 + 9.0), 1e-12);
}

TEST(MarginalPolicing, GenerousCapIsIdentity) {
  Marginal m({1.0, 5.0}, {0.5, 0.5});
  Marginal p = m.policed(100.0);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.mean(), m.mean());
}

TEST(MarginalPolicing, Validation) {
  Marginal m({2.0, 5.0}, {0.5, 0.5});
  EXPECT_THROW(m.policed(2.0), std::invalid_argument);
  EXPECT_THROW(m.policed(1.0), std::invalid_argument);
}

TEST(MarginalPolicing, ReducesSolverLoss) {
  // Policing narrows the upper tail: the queue fed by the policed
  // marginal must lose less (same c, B).
  Marginal m({0.0, 4.0, 16.0}, {0.4, 0.4, 0.2});
  auto epochs = std::make_shared<const lrd::dist::ExponentialEpoch>(10.0);
  lrd::queueing::FluidQueueSolver base(m, epochs, 6.0, 1.0);
  lrd::queueing::FluidQueueSolver pol(m.policed(10.0), epochs, 6.0, 1.0);
  EXPECT_LT(pol.solve().loss_estimate(), base.solve().loss_estimate());
}

}  // namespace
