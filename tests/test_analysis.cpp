// Tests for ACF estimation, line fitting, Hurst estimators and
// histogramming.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/acf.hpp"
#include "analysis/histogram.hpp"
#include "analysis/hurst.hpp"
#include "analysis/regression.hpp"
#include "numerics/random.hpp"
#include "traffic/fgn.hpp"

namespace {

using namespace lrd;

TEST(Acf, Validation) {
  EXPECT_THROW(analysis::autocovariance(std::vector<double>{}, 0), std::invalid_argument);
  EXPECT_THROW(analysis::autocovariance(std::vector<double>{1.0, 2.0}, 2), std::invalid_argument);
  EXPECT_THROW(analysis::autocorrelation(std::vector<double>(10, 3.0), 2), std::domain_error);
}

TEST(Acf, LagZeroIsVariance) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  auto g = analysis::autocovariance(x, 0);
  EXPECT_NEAR(g[0], 1.25, 1e-12);
}

TEST(Acf, MatchesDirectComputation) {
  numerics::Rng rng(3);
  std::vector<double> x(500);
  for (auto& v : x) v = rng.uniform();
  auto fast = analysis::autocovariance(x, 10);

  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= 500.0;
  for (std::size_t k = 0; k <= 10; ++k) {
    double direct = 0.0;
    for (std::size_t t = 0; t + k < x.size(); ++t) direct += (x[t] - mean) * (x[t + k] - mean);
    direct /= 500.0;  // biased normalization
    EXPECT_NEAR(fast[k], direct, 1e-10) << "lag " << k;
  }
}

TEST(Acf, Ar1GeometricDecay) {
  // X_t = phi X_{t-1} + eps: rho(k) = phi^k.
  const double phi = 0.8;
  numerics::Rng rng(5);
  std::vector<double> x(1 << 17);
  x[0] = 0.0;
  for (std::size_t t = 1; t < x.size(); ++t) x[t] = phi * x[t - 1] + rng.normal();
  auto acf = analysis::autocorrelation(x, 8);
  for (std::size_t k = 1; k <= 8; ++k)
    EXPECT_NEAR(acf[k], std::pow(phi, static_cast<double>(k)), 0.02) << "lag " << k;
}

TEST(Acf, WhiteNoiseIsUncorrelated) {
  numerics::Rng rng(7);
  std::vector<double> x(1 << 16);
  for (auto& v : x) v = rng.normal();
  auto acf = analysis::autocorrelation(x, 16);
  for (std::size_t k = 1; k <= 16; ++k) EXPECT_NEAR(acf[k], 0.0, 0.02);
}

TEST(FitLine, ExactLineIsRecovered) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y;
  for (double v : x) y.push_back(2.5 * v - 1.0);
  auto fit = analysis::fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, Validation) {
  EXPECT_THROW(analysis::fit_line({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(analysis::fit_line({1.0, 2.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(analysis::fit_line({1.0, 1.0}, {2.0, 3.0}), std::domain_error);
  EXPECT_THROW(analysis::fit_line_weighted({1.0, 2.0}, {1.0, 2.0}, {1.0, 0.0}),
               std::invalid_argument);
}

TEST(FitLine, WeightsPullTheFit) {
  // Three points; the outlier gets tiny weight, so the fit follows the
  // other two.
  std::vector<double> x{0.0, 1.0, 2.0};
  std::vector<double> y{0.0, 1.0, 10.0};
  auto fit = analysis::fit_line_weighted(x, y, {1.0, 1.0, 1e-9});
  EXPECT_NEAR(fit.slope, 1.0, 1e-6);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-6);
}

TEST(FitLine, NoisyLineGoodRSquared) {
  numerics::Rng rng(9);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i * 0.1);
    y.push_back(3.0 * i * 0.1 + 2.0 + 0.05 * rng.normal());
  }
  auto fit = analysis::fit_line(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.02);
  EXPECT_GT(fit.r_squared, 0.999);
}

// ---- Hurst estimators --------------------------------------------------

struct HurstCase {
  double hurst;
  std::uint64_t seed;
};

class HurstRecovery : public ::testing::TestWithParam<HurstCase> {
 protected:
  std::vector<double> series() const {
    numerics::Rng rng(GetParam().seed);
    return traffic::generate_fgn(1 << 17, GetParam().hurst, rng);
  }
};

TEST_P(HurstRecovery, VarianceTime) {
  const auto est = analysis::hurst_variance_time(series());
  EXPECT_NEAR(est.hurst, GetParam().hurst, 0.08);
  EXPECT_GT(est.fit.r_squared, 0.95);
}

TEST_P(HurstRecovery, RsAnalysis) {
  const auto est = analysis::hurst_rs(series());
  // R/S is the crudest of the four; allow a wider band.
  EXPECT_NEAR(est.hurst, GetParam().hurst, 0.12);
}

TEST_P(HurstRecovery, Wavelet) {
  const auto est = analysis::hurst_wavelet(series());
  EXPECT_NEAR(est.hurst, GetParam().hurst, 0.06);
}

TEST_P(HurstRecovery, Periodogram) {
  const auto est = analysis::hurst_periodogram(series());
  EXPECT_NEAR(est.hurst, GetParam().hurst, 0.12);
}

INSTANTIATE_TEST_SUITE_P(HurstSweep, HurstRecovery,
                         ::testing::Values(HurstCase{0.55, 101}, HurstCase{0.7, 102},
                                           HurstCase{0.83, 103}, HurstCase{0.9, 104}));

TEST(Hurst, WhiteNoiseIsHalf) {
  numerics::Rng rng(201);
  std::vector<double> x(1 << 16);
  for (auto& v : x) v = rng.normal();
  EXPECT_NEAR(analysis::hurst_variance_time(x).hurst, 0.5, 0.05);
  EXPECT_NEAR(analysis::hurst_wavelet(x).hurst, 0.5, 0.05);
}

TEST(Hurst, ShortSeriesRejected) {
  std::vector<double> tiny(32, 1.0);
  EXPECT_THROW(analysis::hurst_variance_time(tiny), std::invalid_argument);
  EXPECT_THROW(analysis::hurst_rs(tiny), std::invalid_argument);
  EXPECT_THROW(analysis::hurst_wavelet(tiny), std::invalid_argument);
  EXPECT_THROW(analysis::hurst_periodogram(tiny), std::invalid_argument);
}

// ---- Histogram ----------------------------------------------------------

TEST(Histogram, ProbabilitiesSumToOne) {
  numerics::Rng rng(301);
  std::vector<double> x(10000);
  for (auto& v : x) v = rng.uniform(0.0, 10.0);
  auto h = analysis::make_histogram(x, 50);
  EXPECT_EQ(h.bins(), 50u);
  double total = 0.0;
  for (double p : h.probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, UniformDataIsFlat) {
  std::vector<double> x;
  for (int i = 0; i < 10000; ++i) x.push_back(i * 0.001);
  auto h = analysis::make_histogram(x, 10);
  for (double p : h.probs) EXPECT_NEAR(p, 0.1, 0.01);
}

TEST(Histogram, MaxSampleLandsInLastBin) {
  std::vector<double> x{0.0, 0.5, 1.0};
  auto h = analysis::make_histogram(x, 2);
  EXPECT_NEAR(h.probs[1], 2.0 / 3.0, 1e-12);  // 0.5 and 1.0
}

TEST(Histogram, DegenerateConstantData) {
  std::vector<double> x(100, 7.0);
  auto h = analysis::make_histogram(x, 5);
  EXPECT_DOUBLE_EQ(h.probs[0], 1.0);
  auto m = analysis::marginal_from_histogram(h);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m.mean(), 7.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(analysis::make_histogram({}, 5), std::invalid_argument);
  EXPECT_THROW(analysis::make_histogram({1.0}, 0), std::invalid_argument);
}

TEST(Histogram, ConditionalMeanMarginalPreservesTraceMean) {
  numerics::Rng rng(303);
  std::vector<double> x(50000);
  for (auto& v : x) v = std::exp(rng.normal(1.0, 0.5));
  traffic::RateTrace trace(x, 0.01);
  auto m = analysis::marginal_from_trace(trace, 50, /*conditional_means=*/true);
  EXPECT_NEAR(m.mean(), trace.mean(), 1e-9 * trace.mean());
  // Bin centers only approximately preserve the mean.
  auto mc = analysis::marginal_from_trace(trace, 50, /*conditional_means=*/false);
  EXPECT_NEAR(mc.mean(), trace.mean(), 0.02 * trace.mean());
  EXPECT_LE(m.size(), 50u);
}

TEST(Histogram, RunLengthOfAlternatingSeriesIsOne) {
  std::vector<double> x;
  for (int i = 0; i < 1000; ++i) x.push_back(i % 2 == 0 ? 0.0 : 10.0);
  auto h = analysis::make_histogram(x, 10);
  EXPECT_NEAR(analysis::mean_same_bin_run_length(x, h), 1.0, 1e-12);
}

TEST(Histogram, RunLengthOfBlocksIsBlockLength) {
  std::vector<double> x;
  for (int b = 0; b < 100; ++b)
    for (int i = 0; i < 7; ++i) x.push_back(b % 2 == 0 ? 0.0 : 10.0);
  auto h = analysis::make_histogram(x, 10);
  EXPECT_NEAR(analysis::mean_same_bin_run_length(x, h), 7.0, 1e-12);
}

TEST(Histogram, MeanEpochSecondsScalesWithBinLength) {
  std::vector<double> x;
  for (int b = 0; b < 200; ++b)
    for (int i = 0; i < 4; ++i) x.push_back(b % 2 == 0 ? 1.0 : 9.0);
  traffic::RateTrace t(x, 0.01);
  EXPECT_NEAR(analysis::mean_epoch_seconds(t, 10), 0.04, 1e-12);
}

TEST(Histogram, BinIndicesAreConsistentWithProbs) {
  numerics::Rng rng(305);
  std::vector<double> x(20000);
  for (auto& v : x) v = rng.normal(5.0, 1.0);
  auto h = analysis::make_histogram(x, 20);
  auto idx = analysis::bin_indices(x, h);
  std::vector<double> counts(20, 0.0);
  for (auto i : idx) {
    ASSERT_LT(i, 20u);
    counts[i] += 1.0;
  }
  for (std::size_t b = 0; b < 20; ++b)
    EXPECT_NEAR(counts[b] / 20000.0, h.probs[b], 1e-12) << "bin " << b;
}

}  // namespace
