#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "numerics/special_functions.hpp"

namespace {

using namespace lrd::numerics;

class ErfInvRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(ErfInvRoundTrip, ErfOfErfInvIsIdentity) {
  const double y = GetParam();
  EXPECT_NEAR(std::erf(erf_inv(y)), y, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Values, ErfInvRoundTrip,
                         ::testing::Values(-0.999999, -0.99, -0.9, -0.5, -0.1, -1e-8, 0.0, 1e-8,
                                           0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.9999, 0.999999));

TEST(ErfInv, KnownValues) {
  // erf(1) = 0.8427007929497149.
  EXPECT_NEAR(erf_inv(0.8427007929497149), 1.0, 1e-10);
  // erf(0.5) = 0.5204998778130465.
  EXPECT_NEAR(erf_inv(0.5204998778130465), 0.5, 1e-10);
}

TEST(ErfInv, OddSymmetry) {
  for (double y : {0.1, 0.35, 0.77, 0.995}) EXPECT_DOUBLE_EQ(erf_inv(-y), -erf_inv(y));
}

TEST(ErfInv, DomainErrors) {
  EXPECT_THROW(erf_inv(1.0), std::domain_error);
  EXPECT_THROW(erf_inv(-1.0), std::domain_error);
  EXPECT_THROW(erf_inv(1.5), std::domain_error);
  EXPECT_THROW(erf_inv(std::numeric_limits<double>::quiet_NaN()), std::domain_error);
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-14);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.0228), -1.9990, 5e-4);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.9, 0.999})
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12);
}

TEST(NormalQuantile, DomainErrors) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
}

TEST(NormalCdf, Symmetry) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  for (double x : {0.3, 1.0, 2.5}) EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-14);
}

TEST(NeumaierSum, RecoverscancelledMass) {
  // Classic cancellation case: 1 + 1e100 + 1 - 1e100 = 2.
  EXPECT_DOUBLE_EQ(neumaier_sum({1.0, 1e100, 1.0, -1e100}), 2.0);
}

TEST(NeumaierSum, ManySmallTerms) {
  std::vector<double> xs(1000000, 0.1);
  EXPECT_NEAR(neumaier_sum(xs), 100000.0, 1e-7);
}

TEST(CompensatedSum, MatchesVectorVersion) {
  CompensatedSum acc;
  std::vector<double> xs;
  for (int i = 1; i <= 1000; ++i) {
    const double v = 1.0 / static_cast<double>(i);
    xs.push_back(v);
    acc.add(v);
  }
  EXPECT_DOUBLE_EQ(acc.value(), neumaier_sum(xs));
}

TEST(LogAddExp, Basics) {
  EXPECT_NEAR(log_add_exp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-14);
  EXPECT_NEAR(log_add_exp(0.0, 0.0), std::log(2.0), 1e-14);
  // No overflow for huge arguments.
  EXPECT_NEAR(log_add_exp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-10);
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_add_exp(ninf, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(log_add_exp(3.0, ninf), 3.0);
}

TEST(RelativeGap, Basics) {
  EXPECT_DOUBLE_EQ(relative_gap(0.0, 0.0), 0.0);
  EXPECT_NEAR(relative_gap(1.0, 1.0), 0.0, 1e-15);
  EXPECT_NEAR(relative_gap(0.9, 1.1), 0.2, 1e-12);
  EXPECT_NEAR(relative_gap(1.1, 0.9), 0.2, 1e-12);
}

}  // namespace
