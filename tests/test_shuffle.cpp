#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/acf.hpp"
#include "numerics/random.hpp"
#include "traffic/fgn.hpp"
#include "traffic/shuffle.hpp"

namespace {

using namespace lrd;
using traffic::RateTrace;

RateTrace lrd_test_trace(std::size_t n, double hurst, std::uint64_t seed) {
  numerics::Rng rng(seed);
  auto x = traffic::generate_fgn(n, hurst, rng);
  for (double& v : x) v = std::exp(0.3 * v);  // positive rates
  return RateTrace(std::move(x), 0.01);
}

TEST(ExternalShuffle, PreservesMarginalExactly) {
  auto t = lrd_test_trace(4096, 0.8, 1);
  numerics::Rng rng(2);
  auto s = traffic::external_shuffle(t, 64, rng);
  ASSERT_EQ(s.size(), t.size());
  auto a = t.rates();
  auto b = s.rates();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);  // bitwise identical multiset of samples
}

TEST(ExternalShuffle, PreservesPartialTailBlock) {
  RateTrace t({1, 2, 3, 4, 5, 6, 7}, 1.0);
  numerics::Rng rng(3);
  auto s = traffic::external_shuffle(t, 3, rng);  // blocks {1,2,3},{4,5,6}, tail {7}
  EXPECT_DOUBLE_EQ(s[6], 7.0);
}

TEST(ExternalShuffle, BlockInteriorsSurviveIntact) {
  RateTrace t({10, 11, 20, 21, 30, 31, 40, 41}, 1.0);
  numerics::Rng rng(4);
  auto s = traffic::external_shuffle(t, 2, rng);
  // Each output block must be one of the original consecutive pairs.
  for (std::size_t b = 0; b < 4; ++b) {
    const double first = s[2 * b];
    EXPECT_DOUBLE_EQ(s[2 * b + 1], first + 1.0) << "block " << b;
  }
}

TEST(ExternalShuffle, DegenerateBlockLengths) {
  auto t = lrd_test_trace(256, 0.7, 5);
  numerics::Rng rng(6);
  // Block longer than the trace: unchanged.
  auto same = traffic::external_shuffle(t, 1000, rng);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(same[i], t[i]);
  EXPECT_THROW(traffic::external_shuffle(t, 0, rng), std::invalid_argument);
}

TEST(ExternalShuffle, KillsCorrelationBeyondBlockLag) {
  // The defining property (Fig. 6): after shuffling with block length L,
  // the ACF beyond lag L is indistinguishable from noise while the
  // original LRD trace keeps substantial correlation there.
  auto t = lrd_test_trace(1 << 16, 0.9, 7);
  const std::size_t block = 32;
  numerics::Rng rng(8);
  auto s = traffic::external_shuffle(t, block, rng);

  auto acf_orig = analysis::autocorrelation(t, 4 * block);
  auto acf_shuf = analysis::autocorrelation(s, 4 * block);

  EXPECT_GT(acf_orig[2 * block], 0.1);           // original keeps LRD
  EXPECT_NEAR(acf_shuf[2 * block], 0.0, 0.03);   // shuffled does not
  EXPECT_NEAR(acf_shuf[4 * block], 0.0, 0.03);
}

TEST(ExternalShuffle, PreservesShortLagCorrelation) {
  // Within-block structure is untouched, so small-lag ACF survives
  // (diluted only by the O(1/L) block-boundary fraction).
  auto t = lrd_test_trace(1 << 16, 0.9, 9);
  numerics::Rng rng(10);
  auto s = traffic::external_shuffle(t, 256, rng);
  auto acf_orig = analysis::autocorrelation(t, 4);
  auto acf_shuf = analysis::autocorrelation(s, 4);
  EXPECT_NEAR(acf_shuf[1], acf_orig[1], 0.05);
  EXPECT_NEAR(acf_shuf[2], acf_orig[2], 0.05);
}

TEST(InternalShuffle, PreservesMarginalAndBlockMembership) {
  RateTrace t({1, 2, 3, 4, 5, 6, 7, 8}, 1.0);
  numerics::Rng rng(11);
  auto s = traffic::internal_shuffle(t, 4, rng);
  // First four outputs are a permutation of {1,2,3,4}.
  std::vector<double> head{s[0], s[1], s[2], s[3]};
  std::sort(head.begin(), head.end());
  EXPECT_EQ(head, (std::vector<double>{1, 2, 3, 4}));
  std::vector<double> tail{s[4], s[5], s[6], s[7]};
  std::sort(tail.begin(), tail.end());
  EXPECT_EQ(tail, (std::vector<double>{5, 6, 7, 8}));
}

TEST(InternalShuffle, KillsShortLagKeepsLongLag) {
  auto t = lrd_test_trace(1 << 16, 0.9, 13);
  const std::size_t block = 128;
  numerics::Rng rng(14);
  auto s = traffic::internal_shuffle(t, block, rng);
  auto acf_orig = analysis::autocorrelation(t, 4 * block);
  auto acf_shuf = analysis::autocorrelation(s, 4 * block);
  // Short-lag correlation is destroyed...
  EXPECT_LT(acf_shuf[1], acf_orig[1] / 2.0);
  // ...while block-scale correlation (long lags) survives approximately.
  EXPECT_NEAR(acf_shuf[2 * block], acf_orig[2 * block], 0.05);
  EXPECT_GT(acf_shuf[2 * block], 0.05);
}

TEST(FullShuffle, ProducesIidSurrogate) {
  auto t = lrd_test_trace(1 << 15, 0.9, 15);
  numerics::Rng rng(16);
  auto s = traffic::full_shuffle(t, rng);
  auto acf = analysis::autocorrelation(s, 8);
  for (std::size_t k = 1; k <= 8; ++k) EXPECT_NEAR(acf[k], 0.0, 0.03);
  EXPECT_DOUBLE_EQ(s.mean(), s.mean());
  EXPECT_NEAR(s.mean(), t.mean(), 1e-9);
}

TEST(BlockLengthForCutoff, RoundsToNearestBin) {
  RateTrace t(std::vector<double>(100, 1.0), 0.01);
  EXPECT_EQ(traffic::block_length_for_cutoff(t, 0.01), 1u);
  EXPECT_EQ(traffic::block_length_for_cutoff(t, 0.1), 10u);
  EXPECT_EQ(traffic::block_length_for_cutoff(t, 0.104), 10u);
  EXPECT_EQ(traffic::block_length_for_cutoff(t, 0.001), 1u);  // floor at one bin
  EXPECT_THROW(traffic::block_length_for_cutoff(t, 0.0), std::invalid_argument);
}

TEST(Shuffles, DeterministicGivenSeed) {
  auto t = lrd_test_trace(1024, 0.8, 17);
  numerics::Rng a(18), b(18);
  auto s1 = traffic::external_shuffle(t, 16, a);
  auto s2 = traffic::external_shuffle(t, 16, b);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(s1[i], s2[i]);
}

}  // namespace
