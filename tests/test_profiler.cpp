// Tests for the sampling profiler: manual markers attributed to the
// active query, timer-mode capture, disabled-path no-ops, the crash
// handler's raw-sample formatter, and — deliberately — the profiler
// and flight recorder running concurrently on the same threads (the
// TSan job runs `Profiler*` to probe that interleaving).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/context.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace {

using namespace lrd;

#define SKIP_IF_OBS_DISABLED()                             \
  if constexpr (!obs::kObsEnabled) {                       \
    GTEST_SKIP() << "obs layer compiled out";              \
  }

/// Splits folded JSONL into parsed records, failing the test on any
/// unparsable line.
std::vector<obs::json::Value> parse_profile(const std::string& jsonl) {
  std::vector<obs::json::Value> out;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string::npos) nl = jsonl.size();
    const std::string line = jsonl.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    auto parsed = obs::json::parse(line);
    EXPECT_TRUE(parsed.has_value()) << line;
    if (parsed.has_value()) out.push_back(std::move(parsed).take());
  }
  return out;
}

TEST(Profiler, ManualSamplesFoldUnderTheActiveQueryId) {
  SKIP_IF_OBS_DISABLED();
  obs::profiler::reset();
  obs::profiler::Options opt;
  opt.interval_us = 0;  // manual-only: the test controls every sample
  ASSERT_TRUE(obs::profiler::start(opt));
  EXPECT_TRUE(obs::profiler::running());

  const obs::QueryId qid = obs::mint_query_id();
  {
    obs::QueryScope scope(qid);
    for (int i = 0; i < 5; ++i) obs::profiler::sample_now();
  }
  obs::profiler::sample_now();  // unattributed: outside any scope
  obs::profiler::stop();
  EXPECT_FALSE(obs::profiler::running());
  EXPECT_GE(obs::profiler::total_samples(), 6u);

  const auto records = parse_profile(obs::profiler::to_jsonl());
  ASSERT_FALSE(records.empty());
  std::uint64_t attributed = 0, unattributed = 0;
  for (const auto& r : records) {
    EXPECT_EQ(r.string_at("schema"), "lrd-profile-v1");
    EXPECT_GE(r.number_at("count"), 1.0);
    EXPECT_FALSE(r.string_at("stack").empty());
    const auto rec_qid = static_cast<std::uint64_t>(r.number_at("query_id"));
    if (rec_qid == qid)
      attributed += static_cast<std::uint64_t>(r.number_at("count"));
    else if (rec_qid == 0)
      unattributed += static_cast<std::uint64_t>(r.number_at("count"));
  }
  // Identical stacks fold, so counts (not record counts) carry the story.
  EXPECT_EQ(attributed, 5u) << "every in-scope sample carries the query id";
  EXPECT_GE(unattributed, 1u);

  obs::profiler::reset();
}

TEST(Profiler, TimerModeCapturesABusyLoop) {
  SKIP_IF_OBS_DISABLED();
  obs::profiler::reset();
  obs::profiler::Options opt;
  opt.interval_us = 997;
  ASSERT_TRUE(obs::profiler::start(opt));

  // Burn CPU until SIGPROF has had many chances to fire. ITIMER_PROF
  // counts CPU time, so a sleep would never sample; spin instead.
  volatile double sink = 1.0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (obs::profiler::total_samples() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 100000; ++i) sink = sink * 1.0000001 + 0.5;
  }
  obs::profiler::stop();
  EXPECT_GT(obs::profiler::total_samples(), 0u)
      << "a ~1ms CPU timer must sample a multi-second busy loop";
  EXPECT_FALSE(parse_profile(obs::profiler::to_jsonl()).empty());
  obs::profiler::reset();
}

TEST(Profiler, StoppedProfilerIsANoOp) {
  SKIP_IF_OBS_DISABLED();
  obs::profiler::reset();
  ASSERT_FALSE(obs::profiler::running());
  obs::profiler::sample_now();  // the disabled hot-path marker
  EXPECT_EQ(obs::profiler::total_samples(), 0u);
  EXPECT_TRUE(obs::profiler::to_jsonl().empty());
}

TEST(Profiler, WriteFileIsAtomicAndParseable) {
  SKIP_IF_OBS_DISABLED();
  obs::profiler::reset();
  obs::profiler::Options opt;
  opt.interval_us = 0;
  ASSERT_TRUE(obs::profiler::start(opt));
  obs::profiler::sample_now();
  obs::profiler::stop();

  const std::string path =
      ::testing::TempDir() + "lrd_prof_" + std::to_string(::getpid()) + ".jsonl";
  ASSERT_TRUE(obs::profiler::write_file(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_FALSE(parse_profile(text).empty());

  EXPECT_FALSE(obs::profiler::write_file("/nonexistent-dir/prof.jsonl"));
  obs::profiler::reset();
}

TEST(Profiler, FormatSampleJsonlIsValidAndBounded) {
  SKIP_IF_OBS_DISABLED();
  obs::profiler::Sample s;
  s.ts_us = 12.5;
  s.qid = 0xabcdef;
  s.depth = 2;
  s.pcs[0] = 0x1000;  // leaf
  s.pcs[1] = 0x2000;  // root
  char buf[1024];
  const std::size_t n = obs::profiler::format_sample_jsonl(s, 7, buf, sizeof buf);
  ASSERT_GT(n, 0u);
  const auto parsed = obs::json::parse(std::string(buf, n));
  ASSERT_TRUE(parsed.has_value()) << std::string(buf, n);
  EXPECT_EQ(parsed.value().string_at("schema"), "lrd-profile-v1");
  EXPECT_EQ(static_cast<std::uint64_t>(parsed.value().number_at("query_id")), 0xabcdefull);
  EXPECT_EQ(parsed.value().number_at("count"), 1.0);
  // Root-first folded hex frames.
  EXPECT_NE(parsed.value().string_at("stack").find("0x2000;0x1000"), std::string::npos);

  char tiny[8];
  EXPECT_EQ(obs::profiler::format_sample_jsonl(s, 7, tiny, sizeof tiny), 0u)
      << "a too-small buffer reports 0, never truncated JSON";
}

// The interleaving the TSan job exists to probe: SIGPROF sampling the
// same threads that are writing flight events and swapping query
// scopes, while another thread flushes to_jsonl() concurrently.
TEST(ProfilerFlight, ConcurrentSamplingAndFlightRecordingStayCoherent) {
  SKIP_IF_OBS_DISABLED();
  obs::profiler::reset();
  obs::flight::reset();
  obs::profiler::Options opt;
  opt.interval_us = 499;  // aggressive timer to maximize overlap
  ASSERT_TRUE(obs::profiler::start(opt));

  std::atomic<bool> go{false}, done{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&go, &done] {
      while (!go.load()) std::this_thread::yield();
      while (!done.load()) {
        const obs::QueryId qid = obs::mint_query_id();
        obs::QueryScope scope(qid);
        obs::flight::record(obs::flight::EventKind::kSolveLevel, "probe", 1);
        obs::profiler::sample_now();
        obs::flight::record(obs::flight::EventKind::kSolveFinish, "probe", 1);
      }
    });
  }
  std::thread flusher([&go, &done] {
    while (!go.load()) std::this_thread::yield();
    while (!done.load()) {
      (void)obs::profiler::to_jsonl();  // symbolizing reader vs live writers
      (void)obs::flight::to_jsonl();
    }
  });
  go.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  done.store(true);
  for (auto& w : workers) w.join();
  flusher.join();
  obs::profiler::stop();

  EXPECT_GT(obs::profiler::total_samples(), 0u);
  // Every record that made it out still parses after the storm.
  for (const auto& r : parse_profile(obs::profiler::to_jsonl()))
    EXPECT_EQ(r.string_at("schema"), "lrd-profile-v1");

  obs::profiler::reset();
  obs::flight::reset();
}

TEST(Profiler, ResetDropsSamplesAndAllowsRestart) {
  SKIP_IF_OBS_DISABLED();
  obs::profiler::reset();
  obs::profiler::Options opt;
  opt.interval_us = 0;
  ASSERT_TRUE(obs::profiler::start(opt));
  obs::profiler::sample_now();
  obs::profiler::stop();
  EXPECT_GT(obs::profiler::total_samples(), 0u);
  obs::profiler::reset();
  EXPECT_EQ(obs::profiler::total_samples(), 0u);
  EXPECT_TRUE(obs::profiler::to_jsonl().empty());

  ASSERT_TRUE(obs::profiler::start(opt)) << "start is re-armable after reset";
  obs::profiler::sample_now();
  obs::profiler::stop();
  EXPECT_EQ(obs::profiler::total_samples(), 1u);
  obs::profiler::reset();
}

}  // namespace
