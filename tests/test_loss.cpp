// Tests of the loss kernel E[W_l | Q = x] against the paper's closed form
// and basic structural properties.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dist/simple_epochs.hpp"
#include "dist/truncated_pareto.hpp"
#include "queueing/loss.hpp"

namespace {

using namespace lrd;
using dist::Marginal;
using queueing::expected_loss_given_occupancy;
using queueing::expected_work_per_epoch;
using queueing::LossBounds;

// The paper's closed form (display after Eq. 14) for truncated Pareto:
// E[W_l|Q=x] = theta/(alpha-1) sum_{i: Tc(l_i-c) - B + x > 0} pi_i (l_i-c) *
//   [ ((B-x)/(theta (l_i - c)) + 1)^{1-alpha} - (Tc/theta + 1)^{1-alpha} ].
double paper_kernel(const Marginal& m, const dist::TruncatedPareto& d, double c, double B,
                    double x) {
  const double th = d.theta(), a = d.alpha(), tc = d.cutoff();
  double total = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    const double dr = m.rates()[i] - c;
    if (dr <= 0.0) continue;
    if (!(tc * dr - B + x > 0.0)) continue;
    total += m.probs()[i] * dr *
             (std::pow((B - x) / (th * dr) + 1.0, 1.0 - a) - std::pow(tc / th + 1.0, 1.0 - a));
  }
  return th / (a - 1.0) * total;
}

TEST(LossKernel, MatchesPaperClosedForm) {
  Marginal m({1.0, 4.0, 7.0, 12.0}, {0.3, 0.3, 0.2, 0.2});
  dist::TruncatedPareto d(0.05, 1.4, 20.0);
  const double c = 5.0, B = 8.0;
  for (double x : {0.0, 1.0, 4.0, 7.5, 8.0}) {
    EXPECT_NEAR(expected_loss_given_occupancy(m, d, c, B, x), paper_kernel(m, d, c, B, x),
                1e-12)
        << "x = " << x;
  }
}

TEST(LossKernel, MatchesPaperClosedFormInfiniteCutoff) {
  Marginal m({2.0, 9.0}, {0.6, 0.4});
  dist::TruncatedPareto d(0.1, 1.25, std::numeric_limits<double>::infinity());
  const double c = 4.0, B = 3.0;
  for (double x : {0.0, 1.5, 3.0})
    EXPECT_NEAR(expected_loss_given_occupancy(m, d, c, B, x), paper_kernel(m, d, c, B, x), 1e-12);
}

TEST(LossKernel, IncreasingInOccupancy) {
  // Fuller buffer -> more expected loss (the monotonicity Proposition II.1
  // step (i) relies on).
  Marginal m({0.0, 10.0}, {0.5, 0.5});
  dist::TruncatedPareto d(0.02, 1.5, 50.0);
  double prev = -1.0;
  for (double x = 0.0; x <= 4.0; x += 0.25) {
    const double k = expected_loss_given_occupancy(m, d, 6.0, 4.0, x);
    EXPECT_GE(k, prev);
    prev = k;
  }
}

TEST(LossKernel, ZeroWhenNoRateExceedsService) {
  Marginal m({1.0, 2.0, 3.0}, {0.3, 0.4, 0.3});
  dist::ExponentialEpoch d(1.0);
  EXPECT_DOUBLE_EQ(expected_loss_given_occupancy(m, d, 3.5, 1.0, 0.5), 0.0);
  // A rate exactly equal to c also never overflows.
  Marginal m2({1.0, 3.5}, {0.5, 0.5});
  EXPECT_DOUBLE_EQ(expected_loss_given_occupancy(m2, d, 3.5, 1.0, 1.0), 0.0);
}

TEST(LossKernel, ZeroWhenCutoffCannotFillHeadroom) {
  // With T <= Tc, the largest burst is Tc (lambda_max - c); if that cannot
  // reach B - x there is no loss contribution.
  Marginal m({0.0, 6.0}, {0.5, 0.5});
  dist::TruncatedPareto d(0.1, 1.5, 1.0);  // max epoch 1 s
  const double c = 5.0;                    // max net inflow 1 Mb per epoch
  EXPECT_DOUBLE_EQ(expected_loss_given_occupancy(m, d, c, 2.0, 0.5), 0.0);
  EXPECT_GT(expected_loss_given_occupancy(m, d, c, 2.0, 1.5), 0.0);
}

TEST(LossKernel, FullBufferEqualsMeanExcessWork) {
  // At x = B every drop of excess work is lost:
  // E[W_l | Q = B] = sum_{i>c} pi_i (l_i - c) E[T].
  Marginal m({1.0, 9.0}, {0.5, 0.5});
  dist::ExponentialEpoch d(2.0);
  const double c = 4.0;
  EXPECT_NEAR(expected_loss_given_occupancy(m, d, c, 5.0, 5.0), 0.5 * 5.0 * 0.5, 1e-12);
}

TEST(LossKernel, Validation) {
  Marginal m({1.0}, {1.0});
  dist::ExponentialEpoch d(1.0);
  EXPECT_THROW(expected_loss_given_occupancy(m, d, 1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(expected_loss_given_occupancy(m, d, 1.0, 1.0, -0.1), std::invalid_argument);
  EXPECT_THROW(expected_loss_given_occupancy(m, d, 1.0, 1.0, 1.5), std::invalid_argument);
}

TEST(LossDenominator, IsMeanRateTimesMeanEpoch) {
  Marginal m({2.0, 4.0}, {0.5, 0.5});
  dist::ExponentialEpoch d(4.0);
  EXPECT_DOUBLE_EQ(expected_work_per_epoch(m, d), 3.0 * 0.25);
}

TEST(LossBounds, Accessors) {
  LossBounds b{1e-4, 3e-4};
  EXPECT_DOUBLE_EQ(b.mid(), 2e-4);
  EXPECT_DOUBLE_EQ(b.gap(), 2e-4);
  EXPECT_NEAR(b.relative_gap(), 1.0, 1e-12);
  LossBounds tight{1.0, 1.0};
  EXPECT_DOUBLE_EQ(tight.relative_gap(), 0.0);
}

}  // namespace
