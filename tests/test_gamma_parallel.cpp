// Tests for the Gamma epoch law and the parallel_for substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "dist/gamma_epoch.hpp"
#include "numerics/parallel.hpp"
#include "numerics/random.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lrd;
using dist::GammaEpoch;

TEST(GammaEpoch, Validation) {
  EXPECT_THROW(GammaEpoch(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GammaEpoch(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(GammaEpoch::from_mean(0.0, 1.0), std::invalid_argument);
}

TEST(GammaEpoch, ShapeOneIsExponential) {
  GammaEpoch g(1.0, 0.5);
  EXPECT_DOUBLE_EQ(g.mean(), 0.5);
  EXPECT_DOUBLE_EQ(g.variance(), 0.25);
  for (double t : {0.1, 0.5, 2.0}) {
    EXPECT_NEAR(g.ccdf_open(t), std::exp(-2.0 * t), 1e-11);
    EXPECT_NEAR(g.excess_mean(t), std::exp(-2.0 * t) / 2.0, 1e-10) << t;
  }
}

TEST(GammaEpoch, ErlangTwoCcdf) {
  // Gamma(2, 1): ccdf = e^-t (1 + t).
  GammaEpoch g(2.0, 1.0);
  for (double t : {0.5, 1.0, 3.0}) EXPECT_NEAR(g.ccdf_open(t), std::exp(-t) * (1.0 + t), 1e-11);
}

class GammaShapes : public ::testing::TestWithParam<double> {};

TEST_P(GammaShapes, ExcessMeanMatchesNumericIntegral) {
  const double k = GetParam();
  GammaEpoch g = GammaEpoch::from_mean(0.8, k);
  for (double u : {0.0, 0.2, 0.8, 2.5}) {
    const double numeric =
        lrd::testing::integrate_tail([&](double t) { return g.ccdf_open(t); }, u, 0.8);
    // Tolerance absorbs quadrature error near the ccdf's steep start for
    // shape < 1 (infinite density at 0).
    EXPECT_NEAR(g.excess_mean(u), numeric, 1e-4 * (numeric + 1e-10)) << "u = " << u;
  }
}

TEST_P(GammaShapes, MomentsAndSampling) {
  const double k = GetParam();
  GammaEpoch g = GammaEpoch::from_mean(1.0, k);
  EXPECT_NEAR(g.mean(), 1.0, 1e-12);
  EXPECT_NEAR(g.variance(), 1.0 / k, 1e-12);
  numerics::Rng rng(static_cast<std::uint64_t>(k * 31));
  const int n = 300000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = g.sample(rng);
    ASSERT_GT(x, 0.0);
    s += x;
    s2 += x * x;
  }
  const double mean = s / n;
  EXPECT_NEAR(mean, 1.0, 0.02);
  EXPECT_NEAR(s2 / n - mean * mean, 1.0 / k, 0.05 / k);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaShapes, ::testing::Values(0.3, 0.7, 1.0, 2.0, 6.0));

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  numerics::parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndSingleWork) {
  int calls = 0;
  numerics::parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  numerics::parallel_for(1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, MatchesSerialResult) {
  std::vector<double> par(500), ser(500);
  numerics::parallel_for(500, [&](std::size_t i) {
    par[i] = std::sin(static_cast<double>(i)) * std::sqrt(static_cast<double>(i) + 1.0);
  }, 4);
  for (std::size_t i = 0; i < 500; ++i)
    ser[i] = std::sin(static_cast<double>(i)) * std::sqrt(static_cast<double>(i) + 1.0);
  EXPECT_EQ(par, ser);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(numerics::parallel_for(64,
                                      [](std::size_t i) {
                                        if (i == 13) throw std::runtime_error("boom");
                                      },
                                      4),
               std::runtime_error);
}

}  // namespace
