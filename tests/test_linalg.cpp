#include <gtest/gtest.h>

#include <cmath>

#include "numerics/linalg.hpp"
#include "numerics/random.hpp"

namespace {

using namespace lrd::numerics;

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
}

TEST(Matrix, IdentityAndMultiply) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  Matrix i = Matrix::identity(2);
  Matrix prod = a * i;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
  auto v = a.multiply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  EXPECT_THROW(a.multiply({1.0}), std::invalid_argument);
}

TEST(Matrix, KnownProduct) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int val = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = val++;
  val = 1;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = val++;
  Matrix p = a * b;  // [[22,28],[49,64]]
  EXPECT_DOUBLE_EQ(p(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 64.0);
}

TEST(Matrix, Transpose) {
  Matrix a(2, 3);
  a(0, 2) = 5.0;
  Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
}

TEST(SolveLinear, KnownSystem) {
  // x + 2y = 5; 3x - y = 1  ->  x = 1, y = 2.
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = -1.0;
  auto x = solve_linear_system(a, {5.0, 1.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, RandomRoundTrip) {
  Rng rng(7);
  const std::size_t n = 12;
  Matrix a(n, n);
  std::vector<double> x_true(n);
  for (std::size_t r = 0; r < n; ++r) {
    x_true[r] = rng.uniform(-2.0, 2.0);
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += 4.0;  // diagonally dominant => well conditioned
  }
  auto b = a.multiply(x_true);
  auto x = solve_linear_system(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(SolveLinear, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(solve_linear_system(a, {1.0, 2.0}), std::domain_error);
}

TEST(SolveLinear, NeedsPivoting) {
  // Zero pivot in the naive order; partial pivoting must handle it.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  auto x = solve_linear_system(a, {3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(Determinant, KnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_NEAR(determinant(a), 10.0, 1e-12);
  EXPECT_NEAR(determinant(Matrix::identity(5)), 1.0, 1e-12);
  Matrix s(2, 2);  // singular
  s(0, 0) = 1.0;
  s(0, 1) = 1.0;
  s(1, 0) = 1.0;
  s(1, 1) = 1.0;
  EXPECT_DOUBLE_EQ(determinant(s), 0.0);
}

TEST(StationaryDistribution, TwoStateChain) {
  // off -> on at 1, on -> off at 3: pi = (3/4, 1/4).
  Matrix q(2, 2);
  q(0, 0) = -1.0;
  q(0, 1) = 1.0;
  q(1, 0) = 3.0;
  q(1, 1) = -3.0;
  auto pi = stationary_distribution(q);
  EXPECT_NEAR(pi[0], 0.75, 1e-12);
  EXPECT_NEAR(pi[1], 0.25, 1e-12);
}

TEST(StationaryDistribution, BirthDeathBinomial) {
  // 3 iid on/off sources, lambda_on = 2, lambda_off = 1 -> binomial(3, 2/3).
  const std::size_t n = 3;
  Matrix q(n + 1, n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    const double up = static_cast<double>(n - i) * 2.0;
    const double down = static_cast<double>(i) * 1.0;
    if (i < n) q(i, i + 1) = up;
    if (i > 0) q(i, i - 1) = down;
    q(i, i) = -(up + down);
  }
  auto pi = stationary_distribution(q);
  const double p = 2.0 / 3.0;
  const double expect[] = {std::pow(1 - p, 3), 3 * p * std::pow(1 - p, 2),
                           3 * p * p * (1 - p), p * p * p};
  for (std::size_t i = 0; i <= n; ++i) EXPECT_NEAR(pi[i], expect[i], 1e-12) << i;
}

}  // namespace
