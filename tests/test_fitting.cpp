#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fitting.hpp"
#include "numerics/random.hpp"
#include "traffic/synthetic_traces.hpp"

namespace {

using namespace lrd;

TEST(KsStatistic, PerfectFitIsSmall) {
  numerics::Rng rng(1);
  std::vector<double> x(20000);
  for (auto& v : x) v = rng.uniform();
  const double d = analysis::ks_statistic(x, [](double v) { return std::clamp(v, 0.0, 1.0); });
  // KS ~ 1/sqrt(n) for a correct model.
  EXPECT_LT(d, 0.02);
  EXPECT_THROW(analysis::ks_statistic({}, [](double) { return 0.5; }), std::invalid_argument);
}

TEST(KsStatistic, WrongModelIsLarge) {
  numerics::Rng rng(2);
  std::vector<double> x(5000);
  for (auto& v : x) v = rng.uniform();  // U(0,1)
  const double d =
      analysis::ks_statistic(x, [](double v) { return v <= 0.0 ? 0.0 : -std::expm1(-v); });
  EXPECT_GT(d, 0.2);
}

TEST(FitLognormal, RecoversParameters) {
  numerics::Rng rng(3);
  std::vector<double> x(100000);
  for (auto& v : x) v = rng.lognormal(1.2, 0.4);
  const auto fit = analysis::fit_lognormal(x);
  EXPECT_NEAR(fit.mu_log, 1.2, 0.01);
  EXPECT_NEAR(fit.sigma_log, 0.4, 0.01);
  EXPECT_LT(fit.ks_statistic, 0.01);
  EXPECT_NEAR(fit.mean(), std::exp(1.2 + 0.08), 0.1);
  EXPECT_NEAR(fit.cov(), std::sqrt(std::expm1(0.16)), 0.01);
}

TEST(FitLognormal, Validation) {
  EXPECT_THROW(analysis::fit_lognormal({}), std::invalid_argument);
  EXPECT_THROW(analysis::fit_lognormal({1.0, 0.0}), std::invalid_argument);
}

TEST(FitExponential, RecoversRate) {
  numerics::Rng rng(4);
  std::vector<double> x(100000);
  for (auto& v : x) v = rng.exponential(2.5);
  const auto fit = analysis::fit_exponential(x);
  EXPECT_NEAR(fit.rate, 2.5, 0.03);
  EXPECT_LT(fit.ks_statistic, 0.01);
}

TEST(CharacterizeMarginal, SyntheticTracesAreLognormal) {
  // The synthetic MTV trace is lognormal by construction; the
  // characterization must prefer lognormal over exponential decisively.
  const auto c = analysis::characterize_marginal(traffic::mtv_trace());
  EXPECT_STREQ(c.better, "lognormal");
  EXPECT_LT(c.lognormal.ks_statistic, 0.05);
  EXPECT_GT(c.exponential.ks_statistic, 5.0 * c.lognormal.ks_statistic);
  EXPECT_NEAR(c.lognormal.cov(), 0.25, 0.03);
}

}  // namespace
