// Tests for the modulated fluid source, the DAR(1) Markovian source and
// the on/off aggregate generator.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/acf.hpp"
#include "analysis/hurst.hpp"
#include "dist/simple_epochs.hpp"
#include "dist/truncated_pareto.hpp"
#include "numerics/random.hpp"
#include "traffic/fluid_source.hpp"
#include "traffic/markov_source.hpp"
#include "traffic/onoff.hpp"

namespace {

using namespace lrd;
using dist::Marginal;

TEST(FluidSource, NullEpochsThrows) {
  EXPECT_THROW(traffic::FluidSource(Marginal::constant(1.0), nullptr), std::invalid_argument);
}

TEST(FluidSource, AutocovarianceMatchesEq8) {
  // phi(t) = sigma^2 * Eq. 7 for truncated Pareto epochs.
  Marginal m({1.0, 5.0}, {0.5, 0.5});  // sigma^2 = 4
  const double theta = 2.0, alpha = 1.3, tc = 40.0;
  auto tp = std::make_shared<const dist::TruncatedPareto>(theta, alpha, tc);
  traffic::FluidSource src(m, tp);
  EXPECT_DOUBLE_EQ(src.autocovariance(0.0), 4.0);
  for (double t : {0.5, 5.0, 20.0}) {
    const double p = (std::pow(t + theta, 1.0 - alpha) - std::pow(tc + theta, 1.0 - alpha)) /
                     (std::pow(theta, 1.0 - alpha) - std::pow(tc + theta, 1.0 - alpha));
    EXPECT_NEAR(src.autocovariance(t), 4.0 * p, 1e-12) << "t = " << t;
  }
  EXPECT_DOUBLE_EQ(src.autocovariance(40.0), 0.0);  // dead beyond the cutoff
  EXPECT_DOUBLE_EQ(src.autocovariance(100.0), 0.0);
  EXPECT_DOUBLE_EQ(src.autocorrelation(0.0), 1.0);
}

TEST(FluidSource, ZeroVarianceMarginalHasZeroCovariance) {
  auto tp = std::make_shared<const dist::TruncatedPareto>(1.0, 1.5, 10.0);
  traffic::FluidSource src(Marginal::constant(3.0), tp);
  EXPECT_DOUBLE_EQ(src.autocovariance(1.0), 0.0);
  EXPECT_DOUBLE_EQ(src.autocorrelation(1.0), 0.0);
}

TEST(FluidSource, SampleEpochsHaveRightMarginals) {
  Marginal m({1.0, 2.0, 4.0}, {0.25, 0.5, 0.25});
  auto exp_epochs = std::make_shared<const dist::ExponentialEpoch>(2.0);
  traffic::FluidSource src(m, exp_epochs);
  numerics::Rng rng(21);
  auto epochs = src.sample_epochs(200000, rng);
  ASSERT_EQ(epochs.size(), 200000u);
  double dur = 0.0, rate_sum = 0.0;
  for (const auto& e : epochs) {
    dur += e.duration;
    rate_sum += e.rate;
  }
  EXPECT_NEAR(dur / 200000.0, 0.5, 0.01);
  EXPECT_NEAR(rate_sum / 200000.0, m.mean(), 0.02);
}

TEST(FluidSource, SampledTraceMeanMatchesMarginal) {
  Marginal m({2.0, 8.0}, {0.5, 0.5});
  auto tp = std::make_shared<const dist::TruncatedPareto>(0.05, 1.4, 20.0);
  traffic::FluidSource src(m, tp);
  numerics::Rng rng(23);
  auto trace = src.sample_trace(100000, 0.01, rng);
  EXPECT_EQ(trace.size(), 100000u);
  EXPECT_NEAR(trace.mean(), m.mean(), 0.35);  // LRD: slow convergence
  EXPECT_GE(trace.min(), 2.0 - 1e-12);
  EXPECT_LE(trace.max(), 8.0 + 1e-12);
}

TEST(FluidSource, EmpiricalAcfTracksClosedForm) {
  Marginal m({1.0, 9.0}, {0.5, 0.5});
  // Short epochs relative to the bin so the sampled ACF is meaningful.
  auto tp = std::make_shared<const dist::TruncatedPareto>(0.2, 1.5, 50.0);
  traffic::FluidSource src(m, tp);
  numerics::Rng rng(29);
  const double delta = 0.1;
  auto trace = src.sample_trace(1 << 19, delta, rng);
  auto acf = analysis::autocorrelation(trace, 50);
  // Compare at a few multiples of the bin; binning smears lag 0-1, so use
  // moderately large lags where the continuous ACF is smooth.
  for (std::size_t k : {5u, 10u, 20u}) {
    const double expected = src.autocorrelation(static_cast<double>(k) * delta);
    EXPECT_NEAR(acf[k], expected, 0.08) << "lag " << k;
  }
}

TEST(FluidSource, TraceValidation) {
  auto tp = std::make_shared<const dist::TruncatedPareto>(1.0, 1.5, 10.0);
  traffic::FluidSource src(Marginal::constant(1.0), tp);
  numerics::Rng rng(1);
  EXPECT_THROW(src.sample_trace(0, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(src.sample_trace(10, 0.0, rng), std::invalid_argument);
}

TEST(Dar1Source, ValidatesRetention) {
  EXPECT_THROW(traffic::Dar1Source(Marginal::constant(1.0), 1.0), std::invalid_argument);
  EXPECT_THROW(traffic::Dar1Source(Marginal::constant(1.0), -0.1), std::invalid_argument);
}

TEST(Dar1Source, GeometricAutocorrelation) {
  traffic::Dar1Source src(Marginal({0.0, 1.0}, {0.5, 0.5}), 0.9);
  EXPECT_DOUBLE_EQ(src.autocorrelation(0), 1.0);
  EXPECT_NEAR(src.autocorrelation(2), 0.81, 1e-12);

  numerics::Rng rng(31);
  auto trace = src.sample_trace(1 << 18, 0.01, rng);
  auto acf = analysis::autocorrelation(trace, 10);
  for (std::size_t k = 1; k <= 10; ++k)
    EXPECT_NEAR(acf[k], std::pow(0.9, static_cast<double>(k)), 0.03) << "lag " << k;
}

TEST(Dar1Source, MarginalIsPreserved) {
  Marginal m({1.0, 2.0, 3.0}, {0.2, 0.3, 0.5});
  traffic::Dar1Source src(m, 0.7);
  numerics::Rng rng(33);
  auto trace = src.sample_trace(300000, 0.01, rng);
  int c1 = 0, c2 = 0, c3 = 0;
  for (double r : trace.rates()) {
    if (r == 1.0) ++c1;
    else if (r == 2.0) ++c2;
    else ++c3;
  }
  const double n = static_cast<double>(trace.size());
  EXPECT_NEAR(c1 / n, 0.2, 0.02);
  EXPECT_NEAR(c2 / n, 0.3, 0.02);
  EXPECT_NEAR(c3 / n, 0.5, 0.02);
}

TEST(Dar1Source, RetentionForMeanSojourn) {
  // Mean sojourn 1/(1-r) bins must equal mean_epoch / bin_seconds.
  const double r = traffic::Dar1Source::retention_for_mean_sojourn(0.08, 0.01);
  EXPECT_NEAR(1.0 / (1.0 - r), 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(traffic::Dar1Source::retention_for_mean_sojourn(0.005, 0.01), 0.0);
  EXPECT_THROW(traffic::Dar1Source::retention_for_mean_sojourn(0.0, 0.01), std::invalid_argument);
}

TEST(OnOff, ValidatesConfig) {
  traffic::OnOffConfig cfg;
  cfg.on_periods = std::make_shared<const dist::ExponentialEpoch>(1.0);
  cfg.off_periods = nullptr;
  numerics::Rng rng(1);
  EXPECT_THROW(traffic::generate_onoff_aggregate(cfg, 10, 0.1, rng), std::invalid_argument);
  cfg.off_periods = cfg.on_periods;
  cfg.sources = 0;
  EXPECT_THROW(traffic::generate_onoff_aggregate(cfg, 10, 0.1, rng), std::invalid_argument);
}

TEST(OnOff, MeanRateMatchesDutyCycle) {
  traffic::OnOffConfig cfg;
  cfg.sources = 20;
  cfg.peak_rate = 1.0;
  cfg.on_periods = std::make_shared<const dist::ExponentialEpoch>(2.0);   // mean 0.5
  cfg.off_periods = std::make_shared<const dist::ExponentialEpoch>(2.0 / 3.0);  // mean 1.5
  numerics::Rng rng(37);
  auto trace = traffic::generate_onoff_aggregate(cfg, 50000, 0.05, rng);
  // Aggregate mean = sources * peak * E[on]/(E[on]+E[off]) = 20 * 0.25 = 5.
  EXPECT_NEAR(trace.mean(), 5.0, 0.15);
  EXPECT_GE(trace.min(), 0.0);
  EXPECT_LE(trace.max(), 20.0 + 1e-9);
}

TEST(OnOff, HeavyTailedPeriodsProduceLrd) {
  // Willinger et al.: Pareto(alpha = 1.4) on/off periods => H ~ (3-1.4)/2 = 0.8.
  traffic::OnOffConfig heavy;
  heavy.sources = 32;
  heavy.peak_rate = 1.0;
  heavy.on_periods = std::make_shared<const dist::TruncatedPareto>(
      0.4, 1.4, std::numeric_limits<double>::infinity());
  heavy.off_periods = heavy.on_periods;
  numerics::Rng rng(41);
  auto trace = traffic::generate_onoff_aggregate(heavy, 1 << 17, 0.1, rng);
  const double h = analysis::hurst_variance_time(trace).hurst;
  EXPECT_GT(h, 0.65) << "heavy-tailed on/off aggregate must be LRD";

  // Exponential periods with the same mean must stay near H = 1/2.
  traffic::OnOffConfig light = heavy;
  light.on_periods = std::make_shared<const dist::ExponentialEpoch>(1.0 / heavy.on_periods->mean());
  light.off_periods = light.on_periods;
  numerics::Rng rng2(43);
  auto trace2 = traffic::generate_onoff_aggregate(light, 1 << 17, 0.1, rng2);
  const double h2 = analysis::hurst_variance_time(trace2).hurst;
  EXPECT_LT(h2, 0.62) << "exponential on/off aggregate must be SRD";
  EXPECT_GT(h, h2 + 0.1);
}

}  // namespace
