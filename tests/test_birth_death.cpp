// Tests for the general birth-death fluid queue and the Maglaris
// minisource video calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "queueing/markov_fluid.hpp"

namespace {

using namespace lrd::queueing;

BirthDeathFluidSpec video_like_spec() {
  // A 4-state "activity level" chain with non-uniform rates and
  // transition intensities (not expressible as homogeneous on/off).
  BirthDeathFluidSpec spec;
  spec.rates = {1.0, 4.0, 6.5, 12.0};
  spec.up = {3.0, 2.0, 0.8, 0.0};
  spec.down = {0.0, 1.0, 2.5, 4.0};
  spec.service = 6.0;  // mean rate ~5.0 -> utilization ~0.83
  return spec;
}

TEST(BirthDeath, FromOnOffMatchesDirectConstruction) {
  OnOffFluidSpec onoff;
  onoff.sources = 3;
  onoff.rate_on = 2.0;
  onoff.lambda_on = 1.5;
  onoff.lambda_off = 2.5;
  onoff.service = 3.1;
  const auto bd = BirthDeathFluidSpec::from_onoff(onoff);
  ASSERT_EQ(bd.states(), 4u);
  EXPECT_DOUBLE_EQ(bd.rates[2], 4.0);
  EXPECT_DOUBLE_EQ(bd.up[0], 4.5);   // 3 lambda_on
  EXPECT_DOUBLE_EQ(bd.down[3], 7.5); // 3 lambda_off
  EXPECT_NEAR(bd.mean_rate(), onoff.mean_rate(), 1e-12);
  // Both constructions give the same loss.
  const double a = MarkovFluidQueue(onoff).finite_buffer(1.5).loss_rate;
  const double b = MarkovFluidQueue(bd).finite_buffer(1.5).loss_rate;
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(BirthDeath, StationaryIsDetailedBalance) {
  const auto spec = video_like_spec();
  const auto pi = spec.stationary();
  ASSERT_EQ(pi.size(), 4u);
  double total = 0.0;
  for (double p : pi) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (std::size_t i = 0; i + 1 < 4; ++i)
    EXPECT_NEAR(pi[i] * spec.up[i], pi[i + 1] * spec.down[i + 1], 1e-12) << i;
}

TEST(BirthDeath, Validation) {
  auto spec = video_like_spec();
  spec.up[1] = 0.0;  // reducible
  EXPECT_THROW(MarkovFluidQueue{spec}, std::invalid_argument);
  spec = video_like_spec();
  spec.rates[1] = 6.0;  // zero drift (== service)
  EXPECT_THROW(MarkovFluidQueue{spec}, std::invalid_argument);
  spec = video_like_spec();
  spec.up.pop_back();
  EXPECT_THROW(MarkovFluidQueue{spec}, std::invalid_argument);
  spec = video_like_spec();
  spec.rates = {1.0};
  spec.up = {0.0};
  spec.down = {0.0};
  EXPECT_THROW(MarkovFluidQueue{spec}, std::invalid_argument);
}

TEST(BirthDeath, SpectrumStructureForGeneralChain) {
  MarkovFluidQueue q(video_like_spec());
  const auto& z = q.eigenvalues();
  ASSERT_EQ(z.size(), 4u);
  int zeros = 0, negatives = 0;
  for (double v : z) {
    if (v == 0.0) ++zeros;
    if (v < 0.0) ++negatives;
  }
  EXPECT_EQ(zeros, 1);
  // Up-drift states: rates > 6 -> {6.5, 12} -> two negative eigenvalues.
  EXPECT_EQ(negatives, 2);
}

class BirthDeathFinite : public ::testing::TestWithParam<double> {};

TEST_P(BirthDeathFinite, LossAndMeanQueueMatchSimulation) {
  const double buffer = GetParam();
  const auto spec = video_like_spec();
  MarkovFluidQueue q(spec);
  const auto exact = q.finite_buffer(buffer);
  const auto sim = simulate_markov_fluid(spec, buffer, 2000000, 77);
  EXPECT_NEAR(exact.loss_rate, sim.loss_rate, 0.08 * exact.loss_rate + 1e-6) << buffer;
  EXPECT_NEAR(exact.mean_queue, sim.mean_queue, 0.08 * exact.mean_queue + 1e-3) << buffer;
}

INSTANTIATE_TEST_SUITE_P(Buffers, BirthDeathFinite, ::testing::Values(0.2, 1.0, 5.0));

TEST(BirthDeath, InfiniteBufferTailMatchesSimulation) {
  const auto spec = video_like_spec();
  MarkovFluidQueue q(spec);
  ASSERT_LT(spec.utilization(), 1.0);
  const auto sim = simulate_markov_fluid(spec, 1000.0, 2000000, 78);
  EXPECT_NEAR(q.mean_queue(), sim.mean_queue, 0.15 * q.mean_queue());
}

TEST(Maglaris, FitReproducesTargetMoments) {
  const double m = 9.5, v = 5.7, a = 3.9;
  const auto spec = fit_maglaris_minisources(m, v, a, 20, 12.0);
  EXPECT_EQ(spec.sources, 20u);
  EXPECT_NEAR(spec.mean_rate(), m, 1e-12);
  // Variance of the aggregate: N A^2 p (1 - p).
  const double p = spec.p_on();
  const double var = 20.0 * spec.rate_on * spec.rate_on * p * (1.0 - p);
  EXPECT_NEAR(var, v, 1e-9);
  // ACF decay rate: lambda_on + lambda_off = a.
  EXPECT_NEAR(spec.lambda_on + spec.lambda_off, a, 1e-12);
}

TEST(Maglaris, Validation) {
  EXPECT_THROW(fit_maglaris_minisources(0.0, 1.0, 1.0, 5, 2.0), std::invalid_argument);
  EXPECT_THROW(fit_maglaris_minisources(1.0, 1.0, 1.0, 0, 2.0), std::invalid_argument);
}

TEST(Maglaris, CalibratedVideoModelSolves) {
  // Video-like numbers: mean 9.5 Mb/s, std 2.4 Mb/s, ACF decay 3.9 /s
  // (Maglaris et al. report a ~ 3.9 for their video conference data).
  // Service chosen so no activity level sits within ~1% of c: the
  // spectral method (like AMS) is ill-conditioned near zero drifts.
  const auto spec = fit_maglaris_minisources(9.5, 2.4 * 2.4, 3.9, 20, 12.2);
  MarkovFluidQueue q(spec);
  const auto r = q.finite_buffer(0.1 * spec.service);
  EXPECT_GT(r.loss_rate, 0.0);
  EXPECT_LT(r.loss_rate, 0.2);
  // Loss decays fast with buffer for this SRD model.
  EXPECT_LT(q.finite_buffer(2.0 * spec.service).loss_rate, r.loss_rate / 10.0);
}

}  // namespace
