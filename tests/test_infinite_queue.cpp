// Tests for the infinite-buffer simulation, empirical ccdf and the tail
// asymptotics — including small-scale versions of the introduction's
// "same correlation, different queue tails" contrast.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/regression.hpp"
#include "dist/simple_epochs.hpp"
#include "dist/truncated_pareto.hpp"
#include "numerics/random.hpp"
#include "queueing/asymptotics.hpp"
#include "queueing/infinite_queue.hpp"
#include "traffic/fgn.hpp"

namespace {

using namespace lrd;

TEST(Lindley, KnownSmallSequence) {
  auto q = queueing::lindley_occupancies({2.0, -1.0, -5.0, 3.0});
  ASSERT_EQ(q.size(), 4u);
  EXPECT_DOUBLE_EQ(q[0], 2.0);
  EXPECT_DOUBLE_EQ(q[1], 1.0);
  EXPECT_DOUBLE_EQ(q[2], 0.0);
  EXPECT_DOUBLE_EQ(q[3], 3.0);
}

TEST(Lindley, NeverNegative) {
  numerics::Rng rng(1);
  std::vector<double> inc(10000);
  for (auto& x : inc) x = rng.normal(-0.1, 1.0);
  for (double q : queueing::lindley_occupancies(inc)) EXPECT_GE(q, 0.0);
}

TEST(EmpiricalCcdf, Basics) {
  std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  auto p = queueing::empirical_ccdf(samples, {0.0, 1.0, 2.5, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 0.75);  // strictly greater than 1
  EXPECT_DOUBLE_EQ(p[2], 0.5);
  EXPECT_DOUBLE_EQ(p[3], 0.0);
  EXPECT_DOUBLE_EQ(p[4], 0.0);
  EXPECT_THROW(queueing::empirical_ccdf({}, {1.0}), std::invalid_argument);
}

TEST(OnOffInfiniteQueue, Validation) {
  dist::ExponentialEpoch on(1.0), off(1.0);
  numerics::Rng rng(2);
  EXPECT_THROW(queueing::onoff_infinite_queue_samples(on, off, 1.0, 2.0, 10, rng),
               std::invalid_argument);  // peak <= service
  EXPECT_THROW(queueing::onoff_infinite_queue_samples(on, off, 3.0, 1.4, 10, rng),
               std::invalid_argument);  // load >= 1 (offered 1.5)
}

TEST(OnOffInfiniteQueue, ExponentialPeriodsHaveExponentialTail) {
  // M/G/1-like regime: log Pr{Q > x} is linear in x.
  dist::ExponentialEpoch on(2.0), off(0.5);  // E[on]=0.5, E[off]=2 -> p_on=0.2
  numerics::Rng rng(3);
  auto samples = queueing::onoff_infinite_queue_samples(on, off, 3.0, 1.0, 400000, rng);
  std::vector<double> xs{0.5, 1.0, 1.5, 2.0, 2.5, 3.0};
  auto ccdf = queueing::empirical_ccdf(samples, xs);
  std::vector<double> lx, ly;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_GT(ccdf[i], 0.0);
    lx.push_back(xs[i]);
    ly.push_back(std::log(ccdf[i]));
  }
  auto fit = analysis::fit_line(lx, ly);
  EXPECT_LT(fit.slope, -0.1);       // genuinely decaying
  EXPECT_GT(fit.r_squared, 0.98);   // and linearly so in x
}

TEST(OnOffInfiniteQueue, HeavyOnPeriodsHaveHyperbolicTail) {
  // Pareto(alpha = 1.5) on periods: log Pr{Q > x} linear in log x with
  // slope ~ -(alpha - 1) = -0.5; an exponential fit is distinctly worse.
  const double alpha = 1.5;
  dist::TruncatedPareto on(0.5, alpha, std::numeric_limits<double>::infinity());
  dist::ExponentialEpoch off(1.0 / 3.0);  // E[off] = 3, E[on] = 1 -> p_on = 0.25
  numerics::Rng rng(4);
  auto samples = queueing::onoff_infinite_queue_samples(on, off, 2.0, 1.0, 400000, rng);
  std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  auto ccdf = queueing::empirical_ccdf(samples, xs);
  std::vector<double> llx, lly, lx;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_GT(ccdf[i], 0.0) << "x = " << xs[i];
    llx.push_back(std::log(xs[i]));
    lx.push_back(xs[i]);
    lly.push_back(std::log(ccdf[i]));
  }
  auto power_fit = analysis::fit_line(llx, lly);
  auto exp_fit = analysis::fit_line(lx, lly);
  EXPECT_NEAR(power_fit.slope, -queueing::hyperbolic_tail_index(alpha), 0.25);
  EXPECT_GT(power_fit.r_squared, exp_fit.r_squared);
}

TEST(Asymptotics, NorrosLogTailStructure) {
  // Zero at x = 0, decreasing in x, Weibull exponent 2 - 2H.
  EXPECT_DOUBLE_EQ(queueing::norros_log_tail(0.0, 1.0, 1.0, 0.8, 2.0), 0.0);
  double prev = 0.0;
  for (double x : {1.0, 2.0, 4.0}) {
    const double lt = queueing::norros_log_tail(x, 1.0, 1.0, 0.8, 2.0);
    EXPECT_LT(lt, prev);
    prev = lt;
  }
  // log-tail ratio at doubled x equals 2^{2-2H}.
  const double r = queueing::norros_log_tail(2.0, 1.0, 1.0, 0.8, 2.0) /
                   queueing::norros_log_tail(1.0, 1.0, 1.0, 0.8, 2.0);
  EXPECT_NEAR(r, std::pow(2.0, 0.4), 1e-12);
}

TEST(Asymptotics, NorrosMatchesHandComputedConstant) {
  // H = 0.5 (ordinary Brownian): kappa = 0.5^0.5 * 0.5^0.5 = 0.5, so
  // log tail = -(c-m) x / (2 * 0.25 * a m) = -2 (c-m) x / (a m)... check.
  const double lt = queueing::norros_log_tail(1.0, 1.0, 1.0, 0.5, 2.0);
  EXPECT_NEAR(lt, -(2.0 - 1.0) * 1.0 / (2.0 * 0.25 * 1.0 * 1.0), 1e-12);
}

TEST(Asymptotics, Validation) {
  EXPECT_THROW(queueing::norros_log_tail(-1.0, 1.0, 1.0, 0.8, 2.0), std::invalid_argument);
  EXPECT_THROW(queueing::norros_log_tail(1.0, 2.0, 1.0, 0.8, 1.0), std::invalid_argument);
  EXPECT_THROW(queueing::weibull_tail_exponent(1.0), std::invalid_argument);
  EXPECT_THROW(queueing::hyperbolic_tail_index(2.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(queueing::weibull_tail_exponent(0.8), 0.4);
  EXPECT_DOUBLE_EQ(queueing::hyperbolic_tail_index(1.4), 0.4);
}

TEST(FbmQueue, WeibullTailBeatsExponentialFit) {
  // Gaussian (fGn) increments with H = 0.8: ln Pr{Q > x} should be linear
  // in x^{2-2H} (Weibullian), not in x.
  const double h = 0.8;
  numerics::Rng rng(5);
  auto z = traffic::generate_fgn(1 << 20, h, rng);
  for (double& v : z) v = 1.0 * v - 0.6;  // mean drift -0.6, unit sigma
  auto q = queueing::lindley_occupancies(z);
  std::vector<double> xs{1.0, 2.0, 4.0, 7.0, 12.0, 20.0};
  auto ccdf = queueing::empirical_ccdf(q, xs);
  std::vector<double> wx, lx, ly;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_GT(ccdf[i], 0.0);
    wx.push_back(std::pow(xs[i], queueing::weibull_tail_exponent(h)));
    lx.push_back(xs[i]);
    ly.push_back(std::log(ccdf[i]));
  }
  auto weibull_fit = analysis::fit_line(wx, ly);
  auto exp_fit = analysis::fit_line(lx, ly);
  EXPECT_GT(weibull_fit.r_squared, exp_fit.r_squared);
  EXPECT_GT(weibull_fit.r_squared, 0.98);
}

}  // namespace
