// Tests for the deterministic fault-injection framework (core/failpoint)
// and the crash-recovery guarantees it exists to prove: every registered
// failpoint is armed as a crash in turn, the persistence layer is left in
// whatever state the "crash" produced, and a warm rerun must still yield
// a bit-identical loss surface.
//
// The whole file is skipped unless the build sets -DLRD_ENABLE_FAILPOINTS=ON;
// in the default build every failpoint call is a compiled-out no-op.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/failpoint.hpp"
#include "core/status.hpp"
#include "runtime/cache.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/manifest.hpp"
#include "traffic/trace.hpp"

namespace {

using namespace lrd;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!core::kFailpointsEnabled)
      GTEST_SKIP() << "failpoints compiled out; configure with -DLRD_ENABLE_FAILPOINTS=ON";
    core::failpoint_disarm_all();
  }
  void TearDown() override { core::failpoint_disarm_all(); }
};

// --------------------------------------------------------------- spec grammar

TEST_F(FailpointTest, SpecGrammarArmsCountsAndModes) {
  core::failpoint_arm("test.site=io_error@2");
  EXPECT_FALSE(core::failpoint_hit("test.site").fired()) << "@2 must not fire on hit 1";
  EXPECT_TRUE(core::failpoint_hit("test.site").io_error());
  EXPECT_FALSE(core::failpoint_hit("test.site").fired()) << "@2 must not fire on hit 3";

  core::failpoint_arm("test.torn=torn_write:7");
  const auto torn = core::failpoint_hit("test.torn");
  EXPECT_TRUE(torn.torn_write());
  EXPECT_EQ(torn.torn_bytes(100), 7u);
  EXPECT_EQ(torn.torn_bytes(4), 4u) << "never keep more bytes than the record has";
  core::failpoint_arm("test.torn_half=torn_write");
  EXPECT_EQ(core::failpoint_hit("test.torn_half").torn_bytes(10), 5u) << "default: half";

  // Comma-separated multi-site spec, exactly as LRDQ_FAILPOINTS carries it.
  core::failpoint_arm("test.one=io_error,test.two=torn_write:3@1");
  EXPECT_TRUE(core::failpoint_hit("test.one").io_error());
  EXPECT_TRUE(core::failpoint_hit("test.two").torn_write());
  EXPECT_FALSE(core::failpoint_hit("test.two").fired());
}

TEST_F(FailpointTest, MalformedSpecsThrowConfigError) {
  EXPECT_THROW(core::failpoint_arm("nonsense"), ConfigError);
  EXPECT_THROW(core::failpoint_arm("=io_error"), ConfigError);
  EXPECT_THROW(core::failpoint_arm("site=frobnicate"), ConfigError);
  EXPECT_THROW(core::failpoint_arm("site=io_error@0"), ConfigError);
  EXPECT_THROW(core::failpoint_arm("site=io_error@x"), ConfigError);
  EXPECT_THROW(core::failpoint_arm("site=delay"), ConfigError);
  EXPECT_THROW(core::failpoint_arm("site=delay:banana"), ConfigError);
  EXPECT_THROW(core::failpoint_arm("site=torn_write:notbytes"), ConfigError);
}

TEST_F(FailpointTest, ExceptionModeThrowsStructuredDataError) {
  core::failpoint_arm("test.exc=exception");
  try {
    core::failpoint_hit("test.exc");
    FAIL() << "armed exception failpoint did not throw";
  } catch (const DataError& e) {
    ASSERT_NE(diagnostics_of(e), nullptr);
    EXPECT_EQ(diagnostics_of(e)->category, ErrorCategory::kIo);
    EXPECT_NE(std::string(e.what()).find("test.exc"), std::string::npos);
  }
}

TEST_F(FailpointTest, CrashModeEscapesStdExceptionHandlers) {
  core::failpoint_arm("test.crash=crash-sim");
  bool crashed = false;
  try {
    try {
      core::failpoint_hit("test.crash");
    } catch (const std::exception&) {
      FAIL() << "CrashSimulated must not be absorbed by catch (const std::exception&)";
    }
  } catch (const core::CrashSimulated& c) {
    crashed = true;
    EXPECT_EQ(c.site, "test.crash");
  }
  EXPECT_TRUE(crashed);
}

TEST_F(FailpointTest, DelayModeSleeps) {
  core::failpoint_arm("test.delay=delay:30ms");
  const auto t0 = std::chrono::steady_clock::now();
  // The sleep happens inside failpoint_hit; the returned action asks
  // nothing further of the site.
  const auto action = core::failpoint_hit("test.delay");
  EXPECT_FALSE(action.io_error());
  EXPECT_FALSE(action.torn_write());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 25);
}

TEST_F(FailpointTest, EnvVariableArmsEveryTool) {
  ::setenv("LRDQ_FAILPOINTS", "test.env=io_error", 1);
  EXPECT_TRUE(core::failpoint_arm_from_env());
  ::unsetenv("LRDQ_FAILPOINTS");
  EXPECT_TRUE(core::failpoint_hit("test.env").io_error());
}

TEST_F(FailpointTest, RegistryListsEveryInstrumentedSite) {
  const auto sites = core::failpoint_sites();
  for (const char* site :
       {"cache.load", "cache.append", "cache.compact", "checkpoint.load", "checkpoint.write",
        "checkpoint.fsync", "checkpoint.rename", "manifest.write", "manifest.fsync",
        "manifest.rename", "trace.read", "solve.level", "sweep.cell"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << "instrumented site " << site << " missing from the registry";
  }
}

// ------------------------------------------------------- targeted recovery

TEST_F(FailpointTest, TornCacheAppendIsQuarantinedAndCompactedOnReload) {
  const std::string dir = ::testing::TempDir() + "lrd_fp_cache_torn";
  std::filesystem::remove_all(dir);
  {
    runtime::SolverCache cache(dir);
    cache.store(1, 0.5);
    core::failpoint_arm("cache.append=torn_write:10@1");
    cache.store(2, 0.25);  // append truncated mid-key: a crash mid-write
    core::failpoint_disarm_all();
  }
  runtime::SolverCache reopened(dir);
  EXPECT_EQ(reopened.stats().loaded, 1u);
  EXPECT_EQ(reopened.stats().corrupt, 1u);
  ASSERT_TRUE(reopened.lookup(1).has_value());
  EXPECT_EQ(*reopened.lookup(1), 0.5);
  EXPECT_FALSE(reopened.lookup(2).has_value()) << "torn record is lost, not misread";
  EXPECT_GE(reopened.stats().compactions, 1u) << "corruption triggers a clean rewrite";
  runtime::SolverCache clean(dir);
  EXPECT_EQ(clean.stats().corrupt, 0u);
  EXPECT_EQ(clean.stats().loaded, 1u);
}

TEST_F(FailpointTest, TornCheckpointNeverYieldsWrongValues) {
  const std::string path = ::testing::TempDir() + "lrd_fp_ckpt_torn.txt";
  std::remove(path.c_str());
  std::map<std::pair<std::size_t, std::size_t>, double> expected;
  {
    runtime::SweepCheckpoint ck(path, 0xfeed, 4, 4);
    for (std::size_t i = 0; i < 4; ++i) {
      const double v = 1.0 / static_cast<double>(3 + i);
      ck.record(i, i, v);
      expected[{i, i}] = v;
    }
    core::failpoint_arm("checkpoint.write=torn_write@1");
    (void)ck.flush();  // file ends up truncated at an arbitrary byte
    core::failpoint_disarm_all();
  }
  runtime::SweepCheckpoint ck(path, 0xfeed, 4, 4);
  const auto cells = ck.load();
  EXPECT_LT(cells.size(), 4u) << "a torn file cannot carry every record";
  for (const auto& cell : cells) {
    const auto it = expected.find({cell.row, cell.col});
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(cell.value, it->second) << "recovered cells must be bit-exact";
  }
}

TEST_F(FailpointTest, FailedCheckpointRenameLeavesPriorFileIntact) {
  const std::string path = ::testing::TempDir() + "lrd_fp_ckpt_rename.txt";
  std::remove(path.c_str());
  runtime::SweepCheckpoint ck(path, 0xbee, 2, 2);
  ck.record(0, 0, 0.5);
  ASSERT_TRUE(ck.flush());
  ck.record(1, 1, 0.25);
  core::failpoint_arm("checkpoint.rename=io_error@1");
  EXPECT_FALSE(ck.flush());
  core::failpoint_disarm_all();
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << "failed flush cleans its temp file";
  // The previously flushed generation still loads.
  runtime::SweepCheckpoint probe(path, 0xbee, 2, 2);
  ASSERT_EQ(probe.load().size(), 1u);
  // And a healthy flush catches the file back up.
  ASSERT_TRUE(ck.flush());
  runtime::SweepCheckpoint after(path, 0xbee, 2, 2);
  EXPECT_EQ(after.load().size(), 2u);
}

TEST_F(FailpointTest, ManifestWriteFailuresReportFalseAndCleanUp) {
  runtime::RunManifest manifest;
  manifest.set_tool("test");
  const std::string path = ::testing::TempDir() + "lrd_fp_manifest.json";
  std::remove(path.c_str());
  for (const char* spec : {"manifest.write=io_error@1", "manifest.rename=io_error@1"}) {
    core::failpoint_disarm_all();
    core::failpoint_arm(spec);
    EXPECT_FALSE(manifest.write_file(path)) << spec;
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << spec;
  }
  core::failpoint_disarm_all();
  EXPECT_TRUE(manifest.write_file(path));
}

// ------------------------------------------------------------- torture test

core::ModelSweepConfig torture_config() {
  core::ModelSweepConfig cfg;
  cfg.hurst = 0.85;
  cfg.mean_epoch = 0.05;
  cfg.utilization = 0.8;
  cfg.solver.target_relative_gap = 0.5;
  return cfg;
}

const std::vector<double> kTortureBuffers{0.05, 0.1};
const std::vector<double> kTortureCutoffs{0.1, 1.0};

std::string csv_of(const core::SweepTable& t) {
  std::ostringstream os;
  t.print_csv(os);
  return os.str();
}

/// One "program run" against persistent state rooted at `dir`: trace
/// ingestion, cache open, checkpointed + manifested sweep, manifest write,
/// cache compaction. Touches every instrumented failpoint site that the
/// model-sweep pipeline can reach.
core::SweepTable run_scenario(const dist::Marginal& m, const std::string& dir,
                              const std::string& trace_path) {
  (void)traffic::RateTrace::try_load_file(trace_path);  // trace.read
  runtime::SolverCache cache(dir);                      // cache.load
  runtime::RunManifest manifest;
  core::SweepRunOptions opts;
  opts.cache = &cache;
  opts.checkpoint_path = dir + "/ckpt.txt";
  opts.checkpoint_every = 1;
  opts.resume = true;
  opts.manifest = &manifest;
  auto table =
      core::loss_vs_buffer_and_cutoff(m, torture_config(), kTortureBuffers, kTortureCutoffs, opts);
  (void)manifest.write_file(dir + "/manifest.json");  // manifest.{write,fsync,rename}
  (void)cache.compact();                              // cache.compact
  return table;
}

TEST_F(FailpointTest, TortureEveryRegisteredSiteThenWarmRerunIsBitIdentical) {
  const dist::Marginal m({2.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  const std::string baseline_csv =
      csv_of(core::loss_vs_buffer_and_cutoff(m, torture_config(), kTortureBuffers,
                                             kTortureCutoffs));
  const std::string trace_path = ::testing::TempDir() + "lrd_fp_trace.txt";
  {
    std::ofstream f(trace_path, std::ios::trunc);
    f << "0.01 3\n1.0 2.0 3.0\n";
  }

  const auto sites = core::failpoint_sites();
  ASSERT_FALSE(sites.empty());
  for (const std::string& site : sites) {
    // Synthetic sites from the grammar tests above (registered via their
    // hits) are not part of the library's failure surface.
    if (site.rfind("test.", 0) == 0) continue;
    SCOPED_TRACE("crash injected at " + site);
    const std::string dir = ::testing::TempDir() + "lrd_fp_torture_" + site;
    std::filesystem::remove_all(dir);

    core::failpoint_disarm_all();
    core::failpoint_arm(site + "=crash@1");
    bool crashed = false;
    try {
      (void)run_scenario(m, dir, trace_path);
    } catch (const core::CrashSimulated& c) {
      crashed = true;
      EXPECT_EQ(c.site, site);
    } catch (...) {
      // A crash escaping through library cleanup may be rewrapped; any
      // abrupt exit is a valid "kill" for recovery purposes.
      crashed = true;
    }
    core::failpoint_disarm_all();

    // Sites outside this scenario's reach never fire; that is fine — the
    // recovery contract below must hold either way.
    const std::string csv = csv_of(run_scenario(m, dir, trace_path));
    EXPECT_EQ(csv, baseline_csv) << "warm rerun diverged after crash at " << site
                                 << (crashed ? "" : " (site never fired)");
  }
}

}  // namespace
