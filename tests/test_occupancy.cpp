// Tests for the secondary occupancy metrics derived from solver results.
#include <gtest/gtest.h>

#include <memory>

#include "dist/simple_epochs.hpp"
#include "dist/truncated_pareto.hpp"
#include "queueing/occupancy.hpp"
#include "queueing/solver.hpp"

namespace {

using namespace lrd;
using dist::Marginal;

queueing::SolverResult solved_result() {
  Marginal m({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  auto d = std::make_shared<const dist::TruncatedPareto>(0.015, 1.3, 10.0);
  queueing::FluidQueueSolver s(m, d, 12.5, 6.25);
  queueing::SolverConfig cfg;
  cfg.target_relative_gap = 0.05;
  cfg.max_bins = 1 << 12;
  return s.solve(cfg);
}

TEST(Occupancy, OverflowProbabilityBracketsAreOrdered) {
  const auto r = solved_result();
  for (double x : {0.0, 1.0, 3.0, 6.0, 6.25}) {
    const auto p = queueing::overflow_probability(r, 6.25, x);
    EXPECT_LE(p.lower, p.upper + 1e-12) << "x = " << x;
    EXPECT_GE(p.lower, 0.0);
    EXPECT_LE(p.upper, 1.0);
  }
}

TEST(Occupancy, OverflowProbabilityEdges) {
  const auto r = solved_result();
  const auto at_zero = queueing::overflow_probability(r, 6.25, 0.0);
  EXPECT_NEAR(at_zero.lower, 1.0, 1e-9);  // Pr{Q >= 0} = 1
  EXPECT_NEAR(at_zero.upper, 1.0, 1e-9);
  const auto beyond = queueing::overflow_probability(r, 6.25, 100.0);  // clamped to B
  EXPECT_LE(beyond.upper, 1.0);
}

TEST(Occupancy, OverflowProbabilityDecreasesInX) {
  const auto r = solved_result();
  double prev_l = 2.0, prev_u = 2.0;
  for (double x : {0.0, 0.5, 1.5, 3.0, 5.0, 6.25}) {
    const auto p = queueing::overflow_probability(r, 6.25, x);
    EXPECT_LE(p.lower, prev_l + 1e-12);
    EXPECT_LE(p.upper, prev_u + 1e-12);
    prev_l = p.lower;
    prev_u = p.upper;
  }
}

TEST(Occupancy, QuantilesAreOrderedAndWithinBuffer) {
  const auto r = solved_result();
  for (double p : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const auto q = queueing::occupancy_quantile(r, 6.25, p);
    EXPECT_LE(q.lower, q.upper + 1e-12) << "p = " << p;
    EXPECT_GE(q.lower, 0.0);
    EXPECT_LE(q.upper, 6.25 + 1e-12);
  }
  EXPECT_THROW(queueing::occupancy_quantile(r, 6.25, 0.0), std::invalid_argument);
}

TEST(Occupancy, QuantilesIncreaseInP) {
  const auto r = solved_result();
  double prev = -1.0;
  for (double p : {0.1, 0.3, 0.6, 0.9, 0.999}) {
    const auto q = queueing::occupancy_quantile(r, 6.25, p);
    EXPECT_GE(q.mid(), prev - 1e-12);
    prev = q.mid();
  }
}

TEST(Occupancy, DelayQuantileScalesByServiceRate) {
  const auto r = solved_result();
  const auto q = queueing::occupancy_quantile(r, 6.25, 0.9);
  const auto d = queueing::delay_quantile(r, 6.25, 12.5, 0.9);
  EXPECT_NEAR(d.lower, q.lower / 12.5, 1e-15);
  EXPECT_NEAR(d.upper, q.upper / 12.5, 1e-15);
  EXPECT_THROW(queueing::delay_quantile(r, 6.25, 0.0, 0.9), std::invalid_argument);
}

TEST(Occupancy, TailCurveIsMonotoneAndBracketing) {
  const auto r = solved_result();
  const auto tail = queueing::occupancy_tail(r, 6.25);
  ASSERT_EQ(tail.lower.size(), r.occupancy_lower.size());
  EXPECT_NEAR(tail.lower[0], 1.0, 1e-9);
  EXPECT_NEAR(tail.upper[0], 1.0, 1e-9);
  for (std::size_t j = 1; j < tail.lower.size(); ++j) {
    EXPECT_LE(tail.lower[j], tail.lower[j - 1] + 1e-12);
    EXPECT_LE(tail.upper[j], tail.upper[j - 1] + 1e-12);
    EXPECT_LE(tail.lower[j], tail.upper[j] + 1e-9);
  }
}

TEST(Occupancy, RejectsEmptyResult) {
  queueing::SolverResult empty;
  EXPECT_THROW(queueing::overflow_probability(empty, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(queueing::occupancy_tail(empty, 1.0), std::invalid_argument);
}

}  // namespace
