// Tests for the Feldmann-Whitt hyperexponential fit and its use as a
// Markovian stand-in for the truncated Pareto.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/hyperexp_fit.hpp"
#include "dist/truncated_pareto.hpp"

namespace {

using namespace lrd::dist;

TEST(HyperExpFit, Validation) {
  auto ccdf = [](double t) { return std::exp(-t); };
  HyperExpFitConfig cfg;
  cfg.components = 1;
  EXPECT_THROW(fit_hyperexponential(ccdf, cfg), std::invalid_argument);
  cfg = HyperExpFitConfig{};
  cfg.t_min = 1.0;
  cfg.t_max = 0.5;
  EXPECT_THROW(fit_hyperexponential(ccdf, cfg), std::invalid_argument);
}

TEST(HyperExpFit, ExponentialTargetIsRecovered) {
  // Fitting an exponential ccdf must give back (a mixture equivalent to)
  // that exponential.
  auto ccdf = [](double t) { return std::exp(-2.0 * t); };
  HyperExpFitConfig cfg;
  cfg.components = 4;
  cfg.t_min = 0.05;
  cfg.t_max = 3.0;
  auto fit = fit_hyperexponential(ccdf, cfg);
  for (double t : {0.1, 0.5, 1.0, 2.0})
    EXPECT_NEAR(fit->ccdf_open(t), ccdf(t), 0.05 * ccdf(t) + 1e-4) << "t = " << t;
  EXPECT_NEAR(fit->mean(), 0.5, 0.05);
}

TEST(HyperExpFit, TruncatedParetoCcdfIsMatchedOverRange) {
  TruncatedPareto target(0.02, 1.3, 50.0);
  auto fit = fit_hyperexponential(target, /*horizon=*/50.0, /*components=*/10);
  ASSERT_GE(fit->components().size(), 4u);
  // Relative ccdf error stays modest across three decades of time scale.
  for (double t : {0.01, 0.05, 0.2, 1.0, 5.0, 20.0}) {
    const double want = target.ccdf_open(t);
    const double got = fit->ccdf_open(t);
    EXPECT_NEAR(got, want, 0.35 * want + 1e-4) << "t = " << t;
  }
}

TEST(HyperExpFit, MeanIsClose) {
  TruncatedPareto target(0.05, 1.5, 20.0);
  auto fit = fit_hyperexponential(target, 20.0, 10);
  EXPECT_NEAR(fit->mean(), target.mean(), 0.25 * target.mean());
}

TEST(HyperExpFit, ResidualCcdfTracksTarget) {
  // The covariance of the fluid source is sigma^2 * residual ccdf, so this
  // is the quantity that must match for the Markov-equivalence ablation.
  TruncatedPareto target(0.02, 1.4, 10.0);
  auto fit = fit_hyperexponential(target, 10.0, 10);
  for (double t : {0.05, 0.2, 1.0, 4.0}) {
    const double want = target.residual_ccdf(t);
    EXPECT_NEAR(fit->residual_ccdf(t), want, 0.35 * want + 0.02) << "t = " << t;
  }
}

TEST(HyperExpFit, WeightsArePositiveAndNormalized) {
  TruncatedPareto target(0.02, 1.3, 50.0);
  auto fit = fit_hyperexponential(target, 50.0, 8);
  double total = 0.0;
  for (const auto& c : fit->components()) {
    EXPECT_GT(c.weight, 0.0);
    total += c.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
