#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <thread>

#include "numerics/convolution.hpp"
#include "numerics/fft.hpp"
#include "numerics/fft_plan.hpp"
#include "numerics/random.hpp"

namespace {

using namespace lrd::numerics;
using cd = std::complex<double>;

TEST(NextPow2, Basics) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_THROW(next_pow2(0), std::invalid_argument);
}

TEST(IsPow2, Basics) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1u << 20));
  EXPECT_FALSE(is_pow2((1u << 20) + 1));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cd> data(3);
  EXPECT_THROW(fft_inplace(data, false), std::invalid_argument);
}

TEST(Fft, SizeOneIsIdentity) {
  std::vector<cd> data{cd{3.0, -2.0}};
  auto out = fft(data);
  EXPECT_EQ(out[0], data[0]);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<cd> data(8, cd{0.0, 0.0});
  data[0] = 1.0;
  auto out = fft(data);
  for (const auto& z : out) {
    EXPECT_NEAR(z.real(), 1.0, 1e-12);
    EXPECT_NEAR(z.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantTransformsToDelta) {
  std::vector<cd> data(16, cd{1.0, 0.0});
  auto out = fft(data);
  EXPECT_NEAR(out[0].real(), 16.0, 1e-12);
  for (std::size_t k = 1; k < out.size(); ++k) EXPECT_NEAR(std::abs(out[k]), 0.0, 1e-11);
}

TEST(Fft, MatchesDirectDftOnRandomInput) {
  Rng rng(7);
  const std::size_t n = 64;
  std::vector<cd> data(n);
  for (auto& z : data) z = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  auto fast = fft(data);
  for (std::size_t k = 0; k < n; ++k) {
    cd direct{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * j) / static_cast<double>(n);
      direct += data[j] * cd{std::cos(ang), std::sin(ang)};
    }
    EXPECT_NEAR(std::abs(fast[k] - direct), 0.0, 1e-9) << "bin " << k;
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversInput) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<cd> data(n);
  for (auto& z : data) z = {rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
  auto out = ifft(fft(data));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(out[i] - data[i]), 0.0, 1e-10) << "index " << i;
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<cd> data(n);
  double time_energy = 0.0;
  for (auto& z : data) {
    z = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    time_energy += std::norm(z);
  }
  auto spec = fft(data);
  double freq_energy = 0.0;
  for (const auto& z : spec) freq_energy += std::norm(z);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 1024, 4096));

TEST(Convolution, DirectKnownResult) {
  auto out = convolve_direct({1.0, 2.0, 3.0}, {4.0, 5.0});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 13.0);
  EXPECT_DOUBLE_EQ(out[2], 22.0);
  EXPECT_DOUBLE_EQ(out[3], 15.0);
}

TEST(Convolution, EmptyInputThrows) {
  EXPECT_THROW(convolve_direct({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(convolve_fft({1.0}, {}), std::invalid_argument);
}

class ConvolutionAgreement : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ConvolutionAgreement, FftMatchesDirect) {
  const auto [na, nb] = GetParam();
  Rng rng(na * 1000 + nb);
  std::vector<double> a(na), b(nb);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  auto d = convolve_direct(a, b);
  auto f = convolve_fft(a, b);
  ASSERT_EQ(d.size(), f.size());
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_NEAR(d[i], f[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvolutionAgreement,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{1, 17},
                                           std::pair<std::size_t, std::size_t>{33, 1},
                                           std::pair<std::size_t, std::size_t>{7, 13},
                                           std::pair<std::size_t, std::size_t>{100, 100},
                                           std::pair<std::size_t, std::size_t>{257, 513}));

TEST(Convolution, SelfConvolvePowersOfBinomial) {
  // (1 + x)^4 coefficients via repeated self-convolution of {1, 1}.
  auto out = self_convolve({1.0, 1.0}, 4);
  ASSERT_EQ(out.size(), 5u);
  const double expect[] = {1, 4, 6, 4, 1};
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(out[i], expect[i], 1e-12);
}

TEST(Convolution, SelfConvolveIdentity) {
  auto out = self_convolve({0.25, 0.75}, 1);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[1], 0.75);
}

TEST(CachedKernelConvolver, MatchesDirectConvolution) {
  Rng rng(99);
  std::vector<double> kernel(41), signal(21);
  for (auto& v : kernel) v = rng.uniform(0.0, 1.0);
  for (auto& v : signal) v = rng.uniform(0.0, 1.0);
  CachedKernelConvolver conv(kernel, signal.size());
  auto fast = conv.convolve(signal);
  auto direct = convolve_direct(signal, kernel);
  ASSERT_EQ(fast.size(), direct.size());
  for (std::size_t i = 0; i < fast.size(); ++i) EXPECT_NEAR(fast[i], direct[i], 1e-10);
}

TEST(CachedKernelConvolver, ReusableAcrossSignals) {
  CachedKernelConvolver conv({0.5, 0.5}, 4);
  auto a = conv.convolve({1.0, 0.0, 0.0, 1.0});
  auto b = conv.convolve({0.0, 2.0});
  EXPECT_NEAR(a[0], 0.5, 1e-12);
  EXPECT_NEAR(a[4], 0.5, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
  EXPECT_NEAR(b[2], 1.0, 1e-12);
}

TEST(CachedKernelConvolver, RejectsOversizedSignal) {
  CachedKernelConvolver conv({1.0}, 2);
  EXPECT_THROW(conv.convolve({1.0, 2.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(conv.convolve({}), std::invalid_argument);
}

TEST(FftPlanCache, ForwardInverseIsIdentityPerCachedSize) {
  for (const std::size_t n : {2u, 4u, 8u, 32u, 256u, 1024u}) {
    const FftPlan& plan = fft_plan(n);
    EXPECT_EQ(plan.size(), n);
    Rng rng(n);
    std::vector<cd> data(n), orig(n);
    for (std::size_t i = 0; i < n; ++i) orig[i] = data[i] = {rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
    plan.forward(data.data());
    plan.inverse(data.data());
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(std::abs(data[i] * inv_n - orig[i]), 0.0, 1e-10) << "n " << n << " index " << i;
  }
}

TEST(FftPlanCache, ReturnsTheSameInstanceAndNeverEvicts) {
  const FftPlan* first = &fft_plan(512);
  const std::size_t size_after_first = fft_plan_cache_size();
  EXPECT_GE(size_after_first, 1u);
  const FftPlan* second = &fft_plan(512);
  EXPECT_EQ(first, second);
  EXPECT_EQ(fft_plan_cache_size(), size_after_first);
  (void)fft_plan(2048);
  EXPECT_GE(fft_plan_cache_size(), size_after_first);
  // The reference from before the new insertion is still valid.
  EXPECT_EQ(&fft_plan(512), first);
}

TEST(FftPlanCache, RejectsNonPowerOfTwo) {
  EXPECT_THROW(fft_plan(0), std::invalid_argument);
  EXPECT_THROW(fft_plan(3), std::invalid_argument);
  EXPECT_THROW(fft_plan(100), std::invalid_argument);
}

TEST(FftPlanCache, CrossThreadReuse) {
  // All threads must observe the same plan instance and produce correct
  // transforms through it concurrently (run under TSan in CI).
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t n = 128;
  std::vector<const FftPlan*> seen(kThreads, nullptr);
  std::vector<double> max_err(kThreads, 1.0);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen, &max_err] {
      const FftPlan& plan = fft_plan(n);
      seen[t] = &plan;
      Rng rng(1000 + t);
      std::vector<cd> data(n), orig(n);
      for (std::size_t i = 0; i < n; ++i) orig[i] = data[i] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
      plan.forward(data.data());
      plan.inverse(data.data());
      double err = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        err = std::max(err, std::abs(data[i] / static_cast<double>(n) - orig[i]));
      max_err[t] = err;
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_LT(max_err[t], 1e-10) << "thread " << t;
}

class RealFftParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealFftParity, MatchesComplexTransform) {
  const std::size_t n = GetParam();
  Rng rng(n + 17);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const RealFft rfft(n);
  std::vector<cd> half(rfft.spectrum_size());
  rfft.forward(x.data(), x.size(), half.data());
  const auto full = fft_real(x, n);
  for (std::size_t k = 0; k <= n / 2; ++k)
    EXPECT_NEAR(std::abs(half[k] - full[k]), 0.0, 1e-12 * static_cast<double>(n) + 1e-12)
        << "n " << n << " bin " << k;
}

TEST_P(RealFftParity, RoundTripRecoversInput) {
  const std::size_t n = GetParam();
  Rng rng(2 * n + 1);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-2.0, 2.0);
  const RealFft rfft(n);
  std::vector<cd> spec(rfft.spectrum_size());
  std::vector<double> out(n);
  rfft.forward(x.data(), x.size(), spec.data());
  rfft.inverse(spec.data(), out.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(out[i], x[i], 1e-11) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, RealFftParity, ::testing::Values(2, 4, 8, 64, 256, 1024));

TEST(RealFft, ZeroPadsShortSignals) {
  const std::size_t n = 32;
  Rng rng(3);
  std::vector<double> x(11);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const RealFft rfft(n);
  std::vector<cd> half(rfft.spectrum_size());
  rfft.forward(x.data(), x.size(), half.data());
  const auto full = fft_real(x, n);  // pads internally
  for (std::size_t k = 0; k <= n / 2; ++k) EXPECT_NEAR(std::abs(half[k] - full[k]), 0.0, 1e-12);
}

TEST(RealFft, RejectsBadSizes) {
  EXPECT_THROW(RealFft(0), std::invalid_argument);
  EXPECT_THROW(RealFft(1), std::invalid_argument);
  EXPECT_THROW(RealFft(12), std::invalid_argument);
}

TEST(CachedKernelConvolver, ConvolveIntoMatchesAllocatingPath) {
  Rng rng(23);
  std::vector<double> kernel(65), signal(33);
  for (auto& v : kernel) v = rng.uniform(-1.0, 1.0);
  for (auto& v : signal) v = rng.uniform(-1.0, 1.0);
  const CachedKernelConvolver conv(kernel, signal.size());
  auto ws = conv.make_workspace();
  std::vector<double> out(signal.size() + kernel.size() - 1, -1.0);
  conv.convolve_into(signal.data(), signal.size(), ws, out.data());
  const auto ref = conv.convolve(signal);
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_DOUBLE_EQ(out[i], ref[i]);
}

TEST(CachedKernelConvolver, WorkspaceIsReusableAcrossCallsAndLengths) {
  const CachedKernelConvolver conv({0.5, 0.25, 0.25}, 8);
  auto ws = conv.make_workspace();
  std::vector<double> out(10);
  const std::vector<double> s1{1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0};
  conv.convolve_into(s1.data(), s1.size(), ws, out.data());
  EXPECT_NEAR(out[0], 0.5, 1e-12);
  EXPECT_NEAR(out[9], 0.25, 1e-12);
  const std::vector<double> s2{0.0, 4.0};
  conv.convolve_into(s2.data(), s2.size(), ws, out.data());
  EXPECT_NEAR(out[1], 2.0, 1e-12);
  EXPECT_NEAR(out[2], 1.0, 1e-12);
  EXPECT_NEAR(out[3], 1.0, 1e-12);
}

TEST(DualKernelConvolver, MatchesTwoSequentialConvolutions) {
  Rng rng(31);
  const std::size_t m = 48;
  std::vector<double> ka(2 * m + 1), kb(2 * m + 1), a(m + 1), b(m + 1);
  for (auto& v : ka) v = rng.uniform(-1.0, 1.0);
  for (auto& v : kb) v = rng.uniform(-1.0, 1.0);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const DualKernelConvolver dual(ka, kb, a.size());
  auto ws = dual.make_workspace();
  std::vector<double> out_a(a.size() + ka.size() - 1), out_b(b.size() + kb.size() - 1);
  dual.convolve_into(a.data(), b.data(), a.size(), ws, out_a.data(), out_b.data());
  const auto ref_a = convolve_direct(a, ka);
  const auto ref_b = convolve_direct(b, kb);
  for (std::size_t i = 0; i < out_a.size(); ++i) EXPECT_NEAR(out_a[i], ref_a[i], 1e-10) << "a " << i;
  for (std::size_t i = 0; i < out_b.size(); ++i) EXPECT_NEAR(out_b[i], ref_b[i], 1e-10) << "b " << i;
}

TEST(DualKernelConvolver, PackedPmfPairConservesBothMasses) {
  Rng rng(37);
  const std::size_t m = 64;
  auto make_pmf = [&](std::size_t n) {
    std::vector<double> v(n);
    double total = 0.0;
    for (auto& x : v) { x = rng.uniform(); total += x; }
    for (auto& x : v) x /= total;
    return v;
  };
  const auto ka = make_pmf(2 * m + 1), kb = make_pmf(2 * m + 1);
  const auto a = make_pmf(m + 1), b = make_pmf(m + 1);
  const DualKernelConvolver dual(ka, kb, m + 1);
  EXPECT_NEAR(dual.kernel_mass_a(), 1.0, 1e-12);
  EXPECT_NEAR(dual.kernel_mass_b(), 1.0, 1e-12);
  auto ws = dual.make_workspace();
  std::vector<double> out_a(3 * m + 1), out_b(3 * m + 1);
  dual.convolve_into(a.data(), b.data(), a.size(), ws, out_a.data(), out_b.data());
  double ta = 0.0, tb = 0.0;
  for (double v : out_a) ta += v;
  for (double v : out_b) tb += v;
  EXPECT_NEAR(ta, 1.0, 1e-12);
  EXPECT_NEAR(tb, 1.0, 1e-12);
}

TEST(DualKernelConvolver, RejectsBadConfigurations) {
  EXPECT_THROW(DualKernelConvolver({}, {1.0}, 4), std::invalid_argument);
  EXPECT_THROW(DualKernelConvolver({1.0}, {}, 4), std::invalid_argument);
  EXPECT_THROW(DualKernelConvolver({1.0, 2.0}, {1.0}, 4), std::invalid_argument);
  EXPECT_THROW(DualKernelConvolver({1.0}, {1.0}, 0), std::invalid_argument);
  const DualKernelConvolver dual({1.0, 1.0}, {1.0, 1.0}, 2);
  auto ws = dual.make_workspace();
  std::vector<double> a{1.0, 2.0, 3.0}, out(4);
  EXPECT_THROW(dual.convolve_into(a.data(), a.data(), 3, ws, out.data(), out.data()),
               std::invalid_argument);
}

TEST(Convolution, SelfConvolveSpectrumMatchesIterative) {
  // Straddles the small-output direct fallback (out_len <= 64): n = 6
  // stays direct, n = 40 takes the spectrum-powering path.
  Rng rng(41);
  std::vector<double> a(12);
  double total = 0.0;
  for (auto& v : a) { v = rng.uniform(); total += v; }
  for (auto& v : a) v /= total;
  for (const std::size_t n : {2u, 6u, 8u, 40u}) {
    std::vector<double> iterative = a;
    for (std::size_t k = 1; k < n; ++k) iterative = convolve_direct(iterative, a);
    const auto fast = self_convolve(a, n);
    ASSERT_EQ(fast.size(), iterative.size()) << "n " << n;
    for (std::size_t i = 0; i < fast.size(); ++i)
      EXPECT_NEAR(fast[i], iterative[i], 1e-12) << "n " << n << " index " << i;
  }
}

TEST(CachedKernelConvolver, ProbabilityMassIsConserved) {
  // Convolving two pmfs must keep total mass at one (the solver relies on it).
  Rng rng(5);
  std::vector<double> kernel(201), signal(101);
  double ks = 0.0, ss = 0.0;
  for (auto& v : kernel) { v = rng.uniform(); ks += v; }
  for (auto& v : signal) { v = rng.uniform(); ss += v; }
  for (auto& v : kernel) v /= ks;
  for (auto& v : signal) v /= ss;
  CachedKernelConvolver conv(kernel, signal.size());
  auto out = conv.convolve(signal);
  double total = 0.0;
  for (double v : out) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
