#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "numerics/convolution.hpp"
#include "numerics/fft.hpp"
#include "numerics/random.hpp"

namespace {

using namespace lrd::numerics;
using cd = std::complex<double>;

TEST(NextPow2, Basics) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_THROW(next_pow2(0), std::invalid_argument);
}

TEST(IsPow2, Basics) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1u << 20));
  EXPECT_FALSE(is_pow2((1u << 20) + 1));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cd> data(3);
  EXPECT_THROW(fft_inplace(data, false), std::invalid_argument);
}

TEST(Fft, SizeOneIsIdentity) {
  std::vector<cd> data{cd{3.0, -2.0}};
  auto out = fft(data);
  EXPECT_EQ(out[0], data[0]);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<cd> data(8, cd{0.0, 0.0});
  data[0] = 1.0;
  auto out = fft(data);
  for (const auto& z : out) {
    EXPECT_NEAR(z.real(), 1.0, 1e-12);
    EXPECT_NEAR(z.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantTransformsToDelta) {
  std::vector<cd> data(16, cd{1.0, 0.0});
  auto out = fft(data);
  EXPECT_NEAR(out[0].real(), 16.0, 1e-12);
  for (std::size_t k = 1; k < out.size(); ++k) EXPECT_NEAR(std::abs(out[k]), 0.0, 1e-11);
}

TEST(Fft, MatchesDirectDftOnRandomInput) {
  Rng rng(7);
  const std::size_t n = 64;
  std::vector<cd> data(n);
  for (auto& z : data) z = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  auto fast = fft(data);
  for (std::size_t k = 0; k < n; ++k) {
    cd direct{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * j) / static_cast<double>(n);
      direct += data[j] * cd{std::cos(ang), std::sin(ang)};
    }
    EXPECT_NEAR(std::abs(fast[k] - direct), 0.0, 1e-9) << "bin " << k;
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversInput) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<cd> data(n);
  for (auto& z : data) z = {rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
  auto out = ifft(fft(data));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(out[i] - data[i]), 0.0, 1e-10) << "index " << i;
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<cd> data(n);
  double time_energy = 0.0;
  for (auto& z : data) {
    z = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    time_energy += std::norm(z);
  }
  auto spec = fft(data);
  double freq_energy = 0.0;
  for (const auto& z : spec) freq_energy += std::norm(z);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 1024, 4096));

TEST(Convolution, DirectKnownResult) {
  auto out = convolve_direct({1.0, 2.0, 3.0}, {4.0, 5.0});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 13.0);
  EXPECT_DOUBLE_EQ(out[2], 22.0);
  EXPECT_DOUBLE_EQ(out[3], 15.0);
}

TEST(Convolution, EmptyInputThrows) {
  EXPECT_THROW(convolve_direct({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(convolve_fft({1.0}, {}), std::invalid_argument);
}

class ConvolutionAgreement : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ConvolutionAgreement, FftMatchesDirect) {
  const auto [na, nb] = GetParam();
  Rng rng(na * 1000 + nb);
  std::vector<double> a(na), b(nb);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  auto d = convolve_direct(a, b);
  auto f = convolve_fft(a, b);
  ASSERT_EQ(d.size(), f.size());
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_NEAR(d[i], f[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvolutionAgreement,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{1, 17},
                                           std::pair<std::size_t, std::size_t>{33, 1},
                                           std::pair<std::size_t, std::size_t>{7, 13},
                                           std::pair<std::size_t, std::size_t>{100, 100},
                                           std::pair<std::size_t, std::size_t>{257, 513}));

TEST(Convolution, SelfConvolvePowersOfBinomial) {
  // (1 + x)^4 coefficients via repeated self-convolution of {1, 1}.
  auto out = self_convolve({1.0, 1.0}, 4);
  ASSERT_EQ(out.size(), 5u);
  const double expect[] = {1, 4, 6, 4, 1};
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(out[i], expect[i], 1e-12);
}

TEST(Convolution, SelfConvolveIdentity) {
  auto out = self_convolve({0.25, 0.75}, 1);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[1], 0.75);
}

TEST(CachedKernelConvolver, MatchesDirectConvolution) {
  Rng rng(99);
  std::vector<double> kernel(41), signal(21);
  for (auto& v : kernel) v = rng.uniform(0.0, 1.0);
  for (auto& v : signal) v = rng.uniform(0.0, 1.0);
  CachedKernelConvolver conv(kernel, signal.size());
  auto fast = conv.convolve(signal);
  auto direct = convolve_direct(signal, kernel);
  ASSERT_EQ(fast.size(), direct.size());
  for (std::size_t i = 0; i < fast.size(); ++i) EXPECT_NEAR(fast[i], direct[i], 1e-10);
}

TEST(CachedKernelConvolver, ReusableAcrossSignals) {
  CachedKernelConvolver conv({0.5, 0.5}, 4);
  auto a = conv.convolve({1.0, 0.0, 0.0, 1.0});
  auto b = conv.convolve({0.0, 2.0});
  EXPECT_NEAR(a[0], 0.5, 1e-12);
  EXPECT_NEAR(a[4], 0.5, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
  EXPECT_NEAR(b[2], 1.0, 1e-12);
}

TEST(CachedKernelConvolver, RejectsOversizedSignal) {
  CachedKernelConvolver conv({1.0}, 2);
  EXPECT_THROW(conv.convolve({1.0, 2.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(conv.convolve({}), std::invalid_argument);
}

TEST(CachedKernelConvolver, ProbabilityMassIsConserved) {
  // Convolving two pmfs must keep total mass at one (the solver relies on it).
  Rng rng(5);
  std::vector<double> kernel(201), signal(101);
  double ks = 0.0, ss = 0.0;
  for (auto& v : kernel) { v = rng.uniform(); ks += v; }
  for (auto& v : signal) { v = rng.uniform(); ss += v; }
  for (auto& v : kernel) v /= ks;
  for (auto& v : signal) v /= ss;
  CachedKernelConvolver conv(kernel, signal.size());
  auto out = conv.convolve(signal);
  double total = 0.0;
  for (double v : out) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
