#include <gtest/gtest.h>

#include <sstream>

#include "traffic/trace.hpp"

namespace {

using lrd::traffic::RateTrace;

TEST(RateTrace, ValidatesInput) {
  EXPECT_THROW(RateTrace({}, 0.01), std::invalid_argument);
  EXPECT_THROW(RateTrace({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(RateTrace({1.0, -2.0}, 0.01), std::invalid_argument);
}

TEST(RateTrace, BasicStats) {
  RateTrace t({1.0, 2.0, 3.0, 4.0}, 0.5);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t.bin_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(t.duration(), 2.0);
  EXPECT_DOUBLE_EQ(t.mean(), 2.5);
  EXPECT_DOUBLE_EQ(t.variance(), 1.25);
  EXPECT_DOUBLE_EQ(t.min(), 1.0);
  EXPECT_DOUBLE_EQ(t.max(), 4.0);
  EXPECT_DOUBLE_EQ(t[2], 3.0);
}

TEST(RateTrace, WorkAccounting) {
  RateTrace t({2.0, 4.0}, 0.25);
  EXPECT_DOUBLE_EQ(t.work(0), 0.5);
  EXPECT_DOUBLE_EQ(t.work(1), 1.0);
  EXPECT_DOUBLE_EQ(t.total_work(), 1.5);
}

TEST(RateTrace, AggregationAveragesBlocks) {
  RateTrace t({1.0, 3.0, 5.0, 7.0, 9.0}, 0.1);
  RateTrace a = t.aggregated(2);
  ASSERT_EQ(a.size(), 2u);  // trailing partial block dropped
  EXPECT_DOUBLE_EQ(a[0], 2.0);
  EXPECT_DOUBLE_EQ(a[1], 6.0);
  EXPECT_DOUBLE_EQ(a.bin_seconds(), 0.2);
}

TEST(RateTrace, AggregationPreservesMeanOnExactMultiple) {
  RateTrace t({1.0, 3.0, 5.0, 7.0}, 0.1);
  EXPECT_DOUBLE_EQ(t.aggregated(2).mean(), t.mean());
  EXPECT_DOUBLE_EQ(t.aggregated(1).mean(), t.mean());
}

TEST(RateTrace, AggregationErrors) {
  RateTrace t({1.0, 2.0}, 0.1);
  EXPECT_THROW(t.aggregated(0), std::invalid_argument);
  EXPECT_THROW(t.aggregated(3), std::invalid_argument);
}

TEST(RateTrace, Head) {
  RateTrace t({1.0, 2.0, 3.0}, 0.1);
  RateTrace h = t.head(2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_DOUBLE_EQ(h[1], 2.0);
  EXPECT_THROW(t.head(0), std::invalid_argument);
  EXPECT_THROW(t.head(4), std::invalid_argument);
}

TEST(RateTrace, SaveLoadRoundTrip) {
  RateTrace t({1.25, 0.0, 3.75e-3, 9.5222}, 1.0 / 29.97);
  std::stringstream ss;
  t.save(ss);
  RateTrace back = RateTrace::load(ss);
  ASSERT_EQ(back.size(), t.size());
  EXPECT_DOUBLE_EQ(back.bin_seconds(), t.bin_seconds());
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(back[i], t[i]);
}

TEST(RateTrace, LoadRejectsGarbage) {
  std::stringstream empty("");
  EXPECT_THROW(RateTrace::load(empty), std::runtime_error);
  std::stringstream truncated("0.01 5\n1.0 2.0\n");
  EXPECT_THROW(RateTrace::load(truncated), std::runtime_error);
}

TEST(RateTrace, FileRoundTrip) {
  RateTrace t({1.0, 2.0}, 0.5);
  const std::string path = ::testing::TempDir() + "/lrd_trace_test.txt";
  t.save_file(path);
  RateTrace back = RateTrace::load_file(path);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_THROW(RateTrace::load_file("/nonexistent/path/trace.txt"), std::runtime_error);
}

}  // namespace
