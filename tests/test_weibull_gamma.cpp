// Tests for the incomplete gamma function and the Weibull epoch law.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/weibull_epoch.hpp"
#include "numerics/random.hpp"
#include "numerics/special_functions.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lrd;
using lrd::testing::integrate_tail;

TEST(RegularizedGammaQ, Boundaries) {
  EXPECT_DOUBLE_EQ(numerics::regularized_gamma_q(1.0, 0.0), 1.0);
  EXPECT_THROW(numerics::regularized_gamma_q(0.0, 1.0), std::domain_error);
  EXPECT_THROW(numerics::regularized_gamma_q(1.0, -1.0), std::domain_error);
}

TEST(RegularizedGammaQ, IntegerShapeIsErlangTail) {
  // Q(n, x) = e^-x sum_{k<n} x^k / k! for integer n.
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(numerics::regularized_gamma_q(1.0, x), std::exp(-x), 1e-12);
    EXPECT_NEAR(numerics::regularized_gamma_q(2.0, x), std::exp(-x) * (1.0 + x), 1e-11);
    EXPECT_NEAR(numerics::regularized_gamma_q(3.0, x),
                std::exp(-x) * (1.0 + x + x * x / 2.0), 1e-11);
  }
}

TEST(RegularizedGammaQ, HalfShapeIsErfc) {
  // Q(1/2, x) = erfc(sqrt(x)).
  for (double x : {0.01, 0.25, 1.0, 4.0, 16.0})
    EXPECT_NEAR(numerics::regularized_gamma_q(0.5, x), std::erfc(std::sqrt(x)), 1e-11);
}

TEST(RegularizedGammaQ, MatchesNumericIntegralForFractionalShape) {
  const double a = 0.37;
  for (double x : {0.05, 0.5, 2.0}) {
    const double numeric = lrd::testing::integrate_tail(
        [a](double t) { return std::pow(t, a - 1.0) * std::exp(-t); }, x, 1.0);
    EXPECT_NEAR(numerics::upper_incomplete_gamma(a, x), numeric, 1e-6 * numeric)
        << "x = " << x;
  }
}

TEST(RegularizedGammaQ, MonotoneDecreasingInX) {
  double prev = 1.0;
  for (double x = 0.1; x < 20.0; x += 0.3) {
    const double q = numerics::regularized_gamma_q(1.7, x);
    EXPECT_LT(q, prev);
    EXPECT_GE(q, 0.0);
    prev = q;
  }
}

TEST(WeibullEpoch, Validation) {
  EXPECT_THROW(dist::WeibullEpoch(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(dist::WeibullEpoch(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(dist::WeibullEpoch::from_mean(0.0, 1.0), std::invalid_argument);
}

TEST(WeibullEpoch, ShapeOneIsExponential) {
  dist::WeibullEpoch w(0.5, 1.0);
  EXPECT_NEAR(w.mean(), 0.5, 1e-12);
  EXPECT_NEAR(w.variance(), 0.25, 1e-10);
  for (double t : {0.1, 0.5, 2.0}) {
    EXPECT_NEAR(w.ccdf_open(t), std::exp(-2.0 * t), 1e-12);
    EXPECT_NEAR(w.excess_mean(t), std::exp(-2.0 * t) / 2.0, 1e-10) << "t = " << t;
  }
}

class WeibullShapes : public ::testing::TestWithParam<double> {};

TEST_P(WeibullShapes, MomentsMatchGammaFormulas) {
  const double k = GetParam();
  dist::WeibullEpoch w(1.3, k);
  const double g1 = std::tgamma(1.0 + 1.0 / k);
  const double g2 = std::tgamma(1.0 + 2.0 / k);
  EXPECT_NEAR(w.mean(), 1.3 * g1, 1e-12);
  EXPECT_NEAR(w.variance(), 1.69 * (g2 - g1 * g1), 1e-10);
}

TEST_P(WeibullShapes, ExcessMeanMatchesNumericIntegral) {
  const double k = GetParam();
  dist::WeibullEpoch w(0.8, k);
  for (double u : {0.0, 0.2, 0.8, 2.0}) {
    const double numeric = integrate_tail([&](double t) { return w.ccdf_open(t); }, u, 0.8);
    EXPECT_NEAR(w.excess_mean(u), numeric, 1e-5 * (numeric + 1e-10)) << "u = " << u;
  }
}

TEST_P(WeibullShapes, MeanEqualsExcessAtZero) {
  const double k = GetParam();
  dist::WeibullEpoch w(2.0, k);
  EXPECT_NEAR(w.mean(), w.excess_mean(0.0), 1e-10 * w.mean());
}

TEST_P(WeibullShapes, SampleMomentsMatch) {
  const double k = GetParam();
  dist::WeibullEpoch w = dist::WeibullEpoch::from_mean(1.0, k);
  EXPECT_NEAR(w.mean(), 1.0, 1e-12);
  numerics::Rng rng(static_cast<std::uint64_t>(k * 100));
  double s = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) s += w.sample(rng);
  EXPECT_NEAR(s / n, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Shapes, WeibullShapes, ::testing::Values(0.4, 0.7, 1.0, 1.5, 2.5));

TEST(WeibullEpoch, SubexponentialShapeIsBurstierThanExponential) {
  // Same mean, shape 0.5: heavier tail beyond the mean.
  auto heavy = dist::WeibullEpoch::from_mean(1.0, 0.5);
  dist::WeibullEpoch expo(1.0, 1.0);
  EXPECT_GT(heavy.ccdf_open(5.0), expo.ccdf_open(5.0));
  EXPECT_GT(heavy.variance(), expo.variance());
}

}  // namespace
