// Cross-module integration tests: the paper's end-to-end claims at small
// scale (the bench/ harness reproduces them at figure scale).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "analysis/histogram.hpp"
#include "core/correlation_horizon.hpp"
#include "core/experiment.hpp"
#include "core/model.hpp"
#include "core/traces.hpp"
#include "dist/hyperexp_fit.hpp"
#include "dist/simple_epochs.hpp"
#include "dist/truncated_pareto.hpp"
#include "numerics/random.hpp"
#include "queueing/solver.hpp"
#include "queueing/trace_queue_sim.hpp"
#include "traffic/shuffle.hpp"

namespace {

using namespace lrd;

constexpr double kInf = std::numeric_limits<double>::infinity();

queueing::SolverConfig fast_solver() {
  queueing::SolverConfig cfg;
  cfg.target_relative_gap = 0.2;
  cfg.max_bins = 1 << 11;
  return cfg;
}

TEST(Integration, TracePipelineProducesSaneLoss) {
  // Trace -> 50-bin marginal -> model -> loss, as in Section III.
  auto mtv = core::mtv_model();
  core::ModelConfig mc;
  mc.hurst = mtv.hurst;
  mc.mean_epoch = mtv.mean_epoch;
  mc.cutoff = 10.0;
  mc.utilization = mtv.utilization;
  mc.normalized_buffer = 0.1;
  core::FluidModel model(mtv.marginal, mc);
  auto r = model.solve(fast_solver());
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.loss_estimate(), 1e-10);
  EXPECT_LT(r.loss_estimate(), 0.5);
}

TEST(Integration, ModelTracksShuffledTraceSimulation) {
  // Fig. 4 vs Fig. 7: model loss and shuffled-trace loss agree within an
  // order of magnitude for the MTV-like trace across cutoffs.
  auto mtv = core::mtv_model();
  const double b = 0.1;  // 100 ms buffer
  numerics::Rng rng(404);
  for (double tc : {0.5, 5.0}) {
    core::ModelConfig mc;
    mc.hurst = mtv.hurst;
    mc.mean_epoch = mtv.mean_epoch;
    mc.cutoff = tc;
    mc.utilization = mtv.utilization;
    mc.normalized_buffer = b;
    const double model_loss = core::FluidModel(mtv.marginal, mc).solve(fast_solver()).loss_estimate();

    auto shuffled = traffic::external_shuffle(
        mtv.trace, traffic::block_length_for_cutoff(mtv.trace, tc), rng);
    const double sim_loss =
        queueing::simulate_trace_queue_normalized(shuffled, mtv.utilization, b).loss_rate;

    ASSERT_GT(model_loss, 0.0);
    ASSERT_GT(sim_loss, 0.0);
    const double ratio = model_loss / sim_loss;
    EXPECT_GT(ratio, 0.1) << "tc = " << tc;
    EXPECT_LT(ratio, 10.0) << "tc = " << tc;
  }
}

TEST(Integration, CorrelationHorizonExistsAndScalesWithBuffer) {
  // Loss-vs-cutoff curves plateau, and the plateau onset (empirical CH)
  // grows with the buffer size.
  auto marginal = dist::Marginal({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  core::ModelSweepConfig cfg;
  cfg.hurst = 0.83;
  cfg.mean_epoch = 0.05;
  cfg.utilization = 0.8;
  cfg.solver = fast_solver();

  const std::vector<double> cutoffs{0.05, 0.2, 1.0, 5.0, 25.0, 125.0};
  const auto small = core::loss_vs_cutoff(marginal, cfg, 0.1, cutoffs);
  const auto large = core::loss_vs_cutoff(marginal, cfg, 1.0, cutoffs);

  const double ch_small = core::empirical_correlation_horizon(cutoffs, small, 0.2);
  const double ch_large = core::empirical_correlation_horizon(cutoffs, large, 0.2);
  EXPECT_LT(ch_small, cutoffs.back());  // a plateau exists
  EXPECT_GE(ch_large, ch_small);        // bigger buffer -> longer horizon
}

TEST(Integration, Eq26HorizonSeparatesRelevantCorrelation) {
  // Cutoffs beyond the Eq. 26 horizon leave the loss unchanged (within
  // bracket tolerance); cutoffs far below it change the loss a lot.
  auto marginal = dist::Marginal({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  const double util = 0.8;
  const double c = marginal.service_rate_for_utilization(util);
  const double B = 0.2 * c;

  // Moments of the truncated epoch law at a long reference cutoff.
  dist::TruncatedPareto ref(0.015, 1.34, 100.0);
  const double ch = core::correlation_horizon(B, ref.mean(), std::sqrt(ref.variance()),
                                              marginal.stddev(), 0.05);
  ASSERT_GT(ch, 0.0);

  auto loss_at = [&](double tc) {
    auto d = std::make_shared<const dist::TruncatedPareto>(0.015, 1.34, tc);
    return queueing::FluidQueueSolver(marginal, d, c, B).solve(fast_solver()).loss_estimate();
  };
  // Eq. 26 is a rough CLT sketch (the paper validates only its linear-in-B
  // scaling), so test the qualitative content: the relative loss gain per
  // cutoff octave far beyond the horizon is much smaller than below it.
  const double gain_below = loss_at(ch) / std::max(loss_at(ch / 8.0), 1e-300);
  const double gain_beyond = loss_at(64.0 * ch) / std::max(loss_at(8.0 * ch), 1e-300);
  EXPECT_GT(gain_below, gain_beyond);
  EXPECT_LT(gain_beyond, 3.0);
}

TEST(Integration, MarginalDominatesHurst) {
  // Fig. 9 claim: two marginals with identical correlation parameters
  // produce orders-of-magnitude different loss.
  auto mtv = core::mtv_model();
  auto bc = core::bellcore_model();

  core::ModelConfig mc;
  mc.hurst = 0.9;
  mc.mean_epoch = 0.02 / (dist::TruncatedPareto::alpha_from_hurst(0.9) - 1.0);  // theta = 20 ms
  mc.cutoff = 10.0;
  mc.utilization = 2.0 / 3.0;
  mc.normalized_buffer = 1.0;

  const double mtv_loss = core::FluidModel(mtv.marginal, mc).solve(fast_solver()).loss_estimate();
  const double bc_loss = core::FluidModel(bc.marginal, mc).solve(fast_solver()).loss_estimate();
  // The burstier Bellcore marginal must lose dramatically more.
  EXPECT_GT(bc_loss, mtv_loss * 10.0);
}

TEST(Integration, MarkovModelMatchedUpToHorizonPredictsSameLoss) {
  // Section IV: "we may choose any model ... as long as it captures the
  // correlation structure up to CH". A hyperexponential (finite Markov)
  // epoch law fitted to the truncated Pareto over the relevant range must
  // produce a loss estimate close to the Pareto model's.
  auto marginal = dist::Marginal({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  const double c = 12.5, B = 2.5;  // util 0.8, b = 0.2 s
  const double tc = 20.0;
  auto pareto_epochs = std::make_shared<const dist::TruncatedPareto>(0.015, 1.34, tc);
  auto hyper_epochs = dist::fit_hyperexponential(*pareto_epochs, tc, 12);

  queueing::SolverConfig cfg;
  cfg.target_relative_gap = 0.1;
  cfg.max_bins = 1 << 12;
  const auto lp = queueing::FluidQueueSolver(marginal, pareto_epochs, c, B).solve(cfg);
  const auto lh = queueing::FluidQueueSolver(marginal, hyper_epochs, c, B).solve(cfg);

  ASSERT_GT(lp.loss_estimate(), 0.0);
  const double ratio = lh.loss_estimate() / lp.loss_estimate();
  EXPECT_GT(ratio, 1.0 / 3.0);
  EXPECT_LT(ratio, 3.0);
}

TEST(Integration, BufferInefficiencyUnderLrd) {
  // "Reducing loss by buffering is hard for traffic with correlation over
  // many time scales": with a long cutoff, growing the buffer 8x gains
  // less than the same growth under a short cutoff.
  auto marginal = dist::Marginal({2.0, 6.0, 10.0, 14.0, 18.0}, {0.1, 0.2, 0.4, 0.2, 0.1});
  core::ModelSweepConfig cfg;
  cfg.hurst = 0.83;
  cfg.mean_epoch = 0.05;
  cfg.utilization = 0.8;
  cfg.solver = fast_solver();

  auto t = core::loss_vs_buffer_and_cutoff(marginal, cfg, {0.1, 0.8}, {0.2, 50.0});
  const double gain_srd = t.at(0, 0) / std::max(t.at(1, 0), 1e-300);
  const double gain_lrd = t.at(0, 1) / std::max(t.at(1, 1), 1e-300);
  EXPECT_GT(gain_srd, gain_lrd);
}

TEST(Integration, MixtureEpochSeparatesShortAndLongTermStructure) {
  // The future-work VBR model: exponential short-term + Pareto long-term.
  // Its source autocovariance interpolates between both components.
  std::vector<dist::MixtureEpoch::Component> comps;
  comps.push_back({0.6, std::make_shared<const dist::ExponentialEpoch>(20.0)});
  comps.push_back({0.4, std::make_shared<const dist::TruncatedPareto>(0.01, 1.3, 100.0)});
  auto mix = std::make_shared<const dist::MixtureEpoch>(std::move(comps));

  auto marginal = dist::Marginal({2.0, 18.0}, {0.5, 0.5});
  traffic::FluidSource src(marginal, mix);
  // Long-lag correlation survives (Pareto part)...
  EXPECT_GT(src.autocorrelation(5.0), 0.01);
  // ...and the queue solver accepts the mixture directly.
  queueing::FluidQueueSolver solver(marginal, mix, 12.5, 1.0);
  auto r = solver.solve(fast_solver());
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.loss_estimate(), 0.0);
}

}  // namespace
