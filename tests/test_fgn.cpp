#include <gtest/gtest.h>

#include <cmath>

#include "analysis/acf.hpp"
#include "numerics/random.hpp"
#include "traffic/fgn.hpp"

namespace {

using namespace lrd;
using traffic::fgn_autocovariance;
using traffic::generate_fbm;
using traffic::generate_fgn;

TEST(FgnAutocovariance, LagZeroIsUnitVariance) {
  for (double h : {0.5, 0.7, 0.9}) EXPECT_DOUBLE_EQ(fgn_autocovariance(h, 0), 1.0);
}

TEST(FgnAutocovariance, WhiteNoiseAtHalf) {
  for (std::size_t k : {1u, 2u, 10u, 100u})
    EXPECT_NEAR(fgn_autocovariance(0.5, k), 0.0, 1e-12);
}

TEST(FgnAutocovariance, KnownLagOne) {
  // gamma(1) = 2^{2H-1} - 1.
  for (double h : {0.6, 0.75, 0.9})
    EXPECT_NEAR(fgn_autocovariance(h, 1), std::pow(2.0, 2.0 * h - 1.0) - 1.0, 1e-14);
}

TEST(FgnAutocovariance, PositiveAndDecayingForPersistent) {
  const double h = 0.85;
  double prev = fgn_autocovariance(h, 1);
  for (std::size_t k = 2; k < 200; ++k) {
    const double g = fgn_autocovariance(h, k);
    EXPECT_GT(g, 0.0);
    EXPECT_LT(g, prev);
    prev = g;
  }
}

TEST(FgnAutocovariance, HyperbolicTail) {
  // gamma(k) ~ H(2H-1) k^{2H-2}: ratio at doubled lag -> 2^{2H-2}.
  const double h = 0.8;
  const double r = fgn_autocovariance(h, 2048) / fgn_autocovariance(h, 1024);
  EXPECT_NEAR(r, std::pow(2.0, 2.0 * h - 2.0), 1e-3);
}

TEST(FgnAutocovariance, NegativeCorrelationForAntipersistent) {
  EXPECT_LT(fgn_autocovariance(0.3, 1), 0.0);
}

TEST(FgnAutocovariance, RejectsBadHurst) {
  EXPECT_THROW(fgn_autocovariance(0.0, 1), std::invalid_argument);
  EXPECT_THROW(fgn_autocovariance(1.0, 1), std::invalid_argument);
}

TEST(GenerateFgn, Validation) {
  numerics::Rng rng(1);
  EXPECT_THROW(generate_fgn(0, 0.8, rng), std::invalid_argument);
  EXPECT_THROW(generate_fgn(16, 1.2, rng), std::invalid_argument);
}

TEST(GenerateFgn, RequestedLengthIsHonored) {
  numerics::Rng rng(2);
  EXPECT_EQ(generate_fgn(1000, 0.7, rng).size(), 1000u);  // non-power-of-two
  EXPECT_EQ(generate_fgn(1024, 0.7, rng).size(), 1024u);
  EXPECT_EQ(generate_fgn(1, 0.7, rng).size(), 1u);
}

// Uncentered autocovariance against the KNOWN zero mean. For strongly LRD
// series the usual sample-mean-centered ACF is heavily negatively biased
// (the sample mean of n points has variance ~ n^{2H-2}), so validating the
// generator requires the oracle-mean estimator.
std::vector<double> uncentered_acov(const std::vector<double>& x, std::size_t max_lag) {
  std::vector<double> out(max_lag + 1, 0.0);
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double s = 0.0;
    for (std::size_t t = 0; t + k < x.size(); ++t) s += x[t] * x[t + k];
    out[k] = s / static_cast<double>(x.size() - k);
  }
  return out;
}

class FgnStatistics : public ::testing::TestWithParam<double> {};

TEST_P(FgnStatistics, MeanVarianceAndAcfMatchTheory) {
  const double h = GetParam();
  numerics::Rng rng(static_cast<std::uint64_t>(h * 1000));
  const std::size_t n = 1 << 17;
  auto x = generate_fgn(n, h, rng);

  // The sample-mean standard deviation grows like n^{H-1}.
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);
  const double mean_sigma = std::pow(static_cast<double>(n), h - 1.0);
  EXPECT_NEAR(mean, 0.0, 4.0 * mean_sigma);

  // The variance estimator of an LRD series also converges slowly (the
  // squared process inherits long memory); widen its band accordingly.
  auto acov = uncentered_acov(x, 4);
  EXPECT_NEAR(acov[0], 1.0, std::max(0.05, 0.5 * mean_sigma));
  for (std::size_t k = 1; k <= 4; ++k)
    EXPECT_NEAR(acov[k] / acov[0], fgn_autocovariance(h, k), 0.03)
        << "H = " << h << " lag " << k;
}

INSTANTIATE_TEST_SUITE_P(HurstValues, FgnStatistics, ::testing::Values(0.5, 0.6, 0.7, 0.83, 0.9));

TEST(GenerateFgn, LongLagCorrelationSurvives) {
  // For H = 0.9 the lag-256 autocovariance is still ~ 0.24; a
  // short-memory generator would show ~ 0. Uses the oracle-mean estimator
  // (see uncentered_acov above) to avoid the LRD centering bias.
  numerics::Rng rng(77);
  auto x = generate_fgn(1 << 18, 0.9, rng);
  auto acov = uncentered_acov(x, 256);
  EXPECT_NEAR(acov[256] / acov[0], fgn_autocovariance(0.9, 256), 0.06);
  EXPECT_GT(acov[256] / acov[0], 0.12);
}

TEST(GenerateFgn, DeterministicGivenSeed) {
  numerics::Rng a(5), b(5);
  auto x = generate_fgn(64, 0.8, a);
  auto y = generate_fgn(64, 0.8, b);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(x[i], y[i]);
}

TEST(GenerateFbm, StartsAtZeroAndCumulates) {
  numerics::Rng rng(9);
  auto path = generate_fbm(128, 0.7, rng);
  ASSERT_EQ(path.size(), 129u);
  EXPECT_DOUBLE_EQ(path[0], 0.0);
  // Differences reconstruct fGn: path must not be constant.
  double total_move = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) total_move += std::abs(path[i] - path[i - 1]);
  EXPECT_GT(total_move, 1.0);
}

TEST(GenerateFbm, SelfSimilarVarianceGrowth) {
  // Var[B(t)] = t^{2H}: compare sample variance of B(n) across many
  // independent paths at two horizons.
  const double h = 0.75;
  const std::size_t n_paths = 600;
  const std::size_t len = 256;
  double var_full = 0.0, var_half = 0.0;
  for (std::size_t p = 0; p < n_paths; ++p) {
    numerics::Rng rng(p + 1);
    auto path = generate_fbm(len, h, rng);
    var_full += path[len] * path[len];
    var_half += path[len / 2] * path[len / 2];
  }
  const double ratio = var_full / var_half;
  EXPECT_NEAR(ratio, std::pow(2.0, 2.0 * h), 0.35);
}

}  // namespace
