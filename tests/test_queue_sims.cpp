// Tests for the Monte-Carlo fluid-queue simulator and the trace-driven
// queue simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dist/simple_epochs.hpp"
#include "dist/truncated_pareto.hpp"
#include "queueing/fluid_queue_sim.hpp"
#include "queueing/trace_queue_sim.hpp"
#include "traffic/trace.hpp"

namespace {

using namespace lrd;
using dist::Marginal;
using traffic::RateTrace;

TEST(FluidSim, Validation) {
  Marginal m({1.0}, {1.0});
  dist::ExponentialEpoch d(1.0);
  EXPECT_THROW(queueing::simulate_fluid_queue(m, d, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(queueing::simulate_fluid_queue(m, d, 1.0, 0.0), std::invalid_argument);
  queueing::FluidSimConfig bad;
  bad.epochs = 4;
  bad.batches = 8;
  EXPECT_THROW(queueing::simulate_fluid_queue(m, d, 1.0, 1.0, bad), std::invalid_argument);
}

TEST(FluidSim, NoLossUnderLightLoad) {
  Marginal m({1.0, 2.0}, {0.5, 0.5});
  dist::ExponentialEpoch d(5.0);
  queueing::FluidSimConfig cfg;
  cfg.epochs = 1 << 16;
  cfg.warmup_epochs = 1 << 10;
  auto r = queueing::simulate_fluid_queue(m, d, 2.5, 10.0, cfg);
  EXPECT_DOUBLE_EQ(r.loss_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.lost_work, 0.0);
  EXPECT_GT(r.arrived_work, 0.0);
}

TEST(FluidSim, ConstantOverloadLosesExactFraction) {
  Marginal m = Marginal::constant(5.0);
  dist::ExponentialEpoch d(1.0);
  queueing::FluidSimConfig cfg;
  cfg.epochs = 1 << 16;
  auto r = queueing::simulate_fluid_queue(m, d, 4.0, 1.0, cfg);
  EXPECT_NEAR(r.loss_rate, 0.2, 1e-3);  // (5-4)/5, modulo the initial fill
  EXPECT_NEAR(r.utilization_observed, 1.0, 1e-9);
  EXPECT_NEAR(r.mean_queue, 1.0, 1e-2);  // pinned at B
}

TEST(FluidSim, UtilizationMatchesOfferedLoadWhenLossFree) {
  Marginal m({0.0, 4.0}, {0.5, 0.5});  // mean 2
  dist::ExponentialEpoch d(2.0);
  queueing::FluidSimConfig cfg;
  cfg.epochs = 1 << 18;
  auto r = queueing::simulate_fluid_queue(m, d, 8.0, 50.0, cfg);
  // Negligible loss: carried = offered load = 2/8.
  EXPECT_NEAR(r.utilization_observed, 0.25, 0.01);
}

TEST(FluidSim, DeterministicSeed) {
  Marginal m({0.0, 10.0}, {0.5, 0.5});
  dist::ExponentialEpoch d(2.0);
  queueing::FluidSimConfig cfg;
  cfg.epochs = 1 << 14;
  cfg.seed = 99;
  auto a = queueing::simulate_fluid_queue(m, d, 6.0, 2.0, cfg);
  auto b = queueing::simulate_fluid_queue(m, d, 6.0, 2.0, cfg);
  EXPECT_DOUBLE_EQ(a.loss_rate, b.loss_rate);
  EXPECT_DOUBLE_EQ(a.mean_queue, b.mean_queue);
}

TEST(FluidSim, StderrShrinksWithMoreEpochs) {
  Marginal m({0.0, 10.0}, {0.5, 0.5});
  auto d = dist::TruncatedPareto(0.05, 1.5, 5.0);
  queueing::FluidSimConfig small;
  small.epochs = 1 << 14;
  queueing::FluidSimConfig big;
  big.epochs = 1 << 20;
  auto rs = queueing::simulate_fluid_queue(m, d, 6.0, 2.0, small);
  auto rb = queueing::simulate_fluid_queue(m, d, 6.0, 2.0, big);
  EXPECT_LT(rb.loss_rate_stderr, rs.loss_rate_stderr);
}

// ---- Trace-driven queue ---------------------------------------------------

TEST(TraceSim, Validation) {
  RateTrace t({1.0, 2.0}, 0.1);
  EXPECT_THROW(queueing::simulate_trace_queue(t, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(queueing::simulate_trace_queue(t, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(queueing::simulate_trace_queue_normalized(t, 1.5, 1.0), std::invalid_argument);
  EXPECT_THROW(queueing::simulate_trace_queue_normalized(t, 0.5, 0.0), std::invalid_argument);
}

TEST(TraceSim, WorkConservation) {
  RateTrace t({5.0, 0.0, 8.0, 1.0, 9.0, 2.0}, 0.5);
  auto r = queueing::simulate_trace_queue(t, 3.0, 1.0);
  // arrived = lost + served + final queue; served <= c * duration.
  EXPECT_NEAR(r.arrived_work, t.total_work(), 1e-12);
  EXPECT_LE(r.served_work, 3.0 * t.duration() + 1e-12);
  EXPECT_GE(r.lost_work, 0.0);
  EXPECT_GE(r.served_work, 0.0);
}

TEST(TraceSim, NoLossWithAmpleService) {
  RateTrace t({1.0, 2.0, 3.0, 2.0}, 0.1);
  auto r = queueing::simulate_trace_queue(t, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(r.loss_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.max_queue, 0.0);
  EXPECT_DOUBLE_EQ(r.empty_fraction, 1.0);
}

TEST(TraceSim, ConstantOverloadFillsThenLoses) {
  RateTrace t(std::vector<double>(1000, 6.0), 0.1);
  const double c = 4.0, B = 2.0;
  auto r = queueing::simulate_trace_queue(t, c, B);
  // The queue gains 0.2 Mb per slot, reaching B = 2 exactly at the end of
  // slot 10 (index 9); the remaining 990 slots each lose 2/6 of their work.
  EXPECT_NEAR(r.loss_rate, (6.0 - 4.0) / 6.0 * (990.0 / 1000.0), 1e-9);
  EXPECT_DOUBLE_EQ(r.max_queue, B);
  EXPECT_NEAR(r.full_fraction, 0.991, 1e-12);
}

TEST(TraceSim, SingleSpikeLosesExactOverflow) {
  // One huge slot; everything beyond B + c*Delta is lost.
  RateTrace t({0.0, 100.0, 0.0}, 0.1);
  const double c = 10.0, B = 3.0;
  auto r = queueing::simulate_trace_queue(t, c, B);
  // Work in spike slot: 10 Mb; service 1 Mb; buffer 3 Mb -> lost 6 Mb.
  EXPECT_NEAR(r.lost_work, 6.0, 1e-12);
  EXPECT_NEAR(r.loss_rate, 6.0 / 10.0, 1e-12);
}

TEST(TraceSim, LossDecreasesWithBuffer) {
  std::vector<double> rates;
  for (int i = 0; i < 5000; ++i) rates.push_back(i % 7 == 0 ? 30.0 : 2.0);
  RateTrace t(rates, 0.05);
  double prev = 1.0;
  for (double b : {0.1, 0.5, 1.0, 3.0}) {
    auto r = queueing::simulate_trace_queue_normalized(t, 0.7, b);
    EXPECT_LE(r.loss_rate, prev + 1e-12) << "buffer " << b;
    prev = r.loss_rate;
  }
}

TEST(TraceSim, NormalizedWrapperMatchesManualParameters) {
  RateTrace t({4.0, 8.0, 2.0, 6.0}, 0.25);  // mean 5
  auto a = queueing::simulate_trace_queue_normalized(t, 0.5, 2.0);
  auto b = queueing::simulate_trace_queue(t, 10.0, 20.0);
  EXPECT_DOUBLE_EQ(a.loss_rate, b.loss_rate);
  EXPECT_DOUBLE_EQ(a.mean_queue, b.mean_queue);
}

TEST(TraceSim, FullAndEmptyFractionsArePlausible) {
  std::vector<double> rates;
  for (int i = 0; i < 1000; ++i) rates.push_back(i % 2 == 0 ? 10.0 : 0.0);
  RateTrace t(rates, 0.1);
  auto r = queueing::simulate_trace_queue(t, 5.0, 0.25);
  EXPECT_GT(r.full_fraction, 0.0);
  EXPECT_GT(r.empty_fraction, 0.0);
  EXPECT_LE(r.full_fraction + r.empty_fraction, 1.0 + 1e-12);
}

}  // namespace
