// Tests of the forensic layer: flight-recorder ring semantics (capacity
// wraparound, tag sanitization, JSONL round-trips), cross-thread
// recording with a concurrent reader (the FlightRecorder* suites run
// under the ThreadSanitizer CI job to pin the lock-free paths down),
// the structured access log, diagnostics-bundle dumps — including the
// fork-based crash-signal path, which stays OUT of the TSan filter
// because fork plus a re-raised SIGABRT is not a data-race probe — and
// the lrdq_doctor triage built on top of both artifacts.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/bundle.hpp"
#include "obs/context.hpp"
#include "obs/doctor.hpp"
#include "obs/eventlog.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"

namespace {

using namespace lrd;
namespace fs = std::filesystem;

#define SKIP_IF_OBS_DISABLED()                            \
  if constexpr (!obs::kObsEnabled) {                      \
    GTEST_SKIP() << "obs compiled out (LRD_DISABLE_OBS)"; \
  }

/// Fresh temp directory per test; removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& stem) {
    path = fs::temp_directory_path() /
           (stem + "-" + std::to_string(::getpid()) + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Events in the snapshot recorded with the given kind.
std::vector<obs::flight::Recorded> events_of_kind(obs::flight::EventKind k) {
  std::vector<obs::flight::Recorded> out;
  for (const auto& r : obs::flight::snapshot())
    if (r.event.kind == static_cast<std::uint16_t>(k)) out.push_back(r);
  return out;
}

TEST(FlightRecorder, RecordsEventsWithPayloadsAndMergesSorted) {
  SKIP_IF_OBS_DISABLED();
  obs::flight::reset();
  obs::flight::record(obs::flight::EventKind::kCacheHit, "k1", 42, 1, 0.0);
  obs::flight::record(obs::flight::EventKind::kSolveFinish, "converged", 7, 256, 3.25);
  const auto snap = obs::flight::snapshot();
  ASSERT_EQ(snap.size(), 2u);
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_GE(snap[i].event.ts_us, snap[i - 1].event.ts_us);
  const auto hits = events_of_kind(obs::flight::EventKind::kCacheHit);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].event.a, 42u);
  EXPECT_EQ(hits[0].event.b, 1u);
  EXPECT_STREQ(hits[0].event.tag, "k1");
  const auto fin = events_of_kind(obs::flight::EventKind::kSolveFinish);
  ASSERT_EQ(fin.size(), 1u);
  EXPECT_DOUBLE_EQ(fin[0].event.x, 3.25);
  EXPECT_GE(obs::flight::total_recorded(), 2u);
  obs::flight::reset();
}

TEST(FlightRecorder, WraparoundKeepsExactlyTheNewestEvents) {
  SKIP_IF_OBS_DISABLED();
  obs::flight::reset(8);
  for (std::uint64_t i = 0; i < 20; ++i)
    obs::flight::record(obs::flight::EventKind::kCacheMiss, "", i);
  const auto snap = obs::flight::snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest 12 were overwritten; the survivors are 12..19 in order.
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(snap[i].event.a, 12u + i);
  EXPECT_EQ(obs::flight::total_recorded(), 20u);
  obs::flight::reset();
}

TEST(FlightRecorder, TagsAreSanitizedAndTruncatedAtRecordTime) {
  SKIP_IF_OBS_DISABLED();
  obs::flight::reset();
  obs::flight::record(obs::flight::EventKind::kDump, "a\"b\\c\nd\x01" "e");
  const std::string long_tag(2 * obs::flight::kMaxTagBytes, 'x');
  obs::flight::record(obs::flight::EventKind::kDump, long_tag);
  const auto dumps = events_of_kind(obs::flight::EventKind::kDump);
  ASSERT_EQ(dumps.size(), 2u);
  EXPECT_STREQ(dumps[0].event.tag, "a_b_c_d_e");
  EXPECT_EQ(std::string(dumps[1].event.tag).size(), obs::flight::kMaxTagBytes);
  obs::flight::reset();
}

TEST(FlightRecorder, FormattedEventsRoundTripThroughTheJsonParser) {
  SKIP_IF_OBS_DISABLED();
  obs::flight::reset();
  const obs::QueryId qid = obs::mint_query_id();
  {
    obs::QueryScope scope(qid);
    obs::flight::record(obs::flight::EventKind::kQueryFinished, "q-17", 6, 1500, 12.5);
  }
  const std::string jsonl = obs::flight::to_jsonl();
  ASSERT_FALSE(jsonl.empty());
  std::istringstream lines(jsonl);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  auto parsed = obs::json::parse(line);
  ASSERT_TRUE(static_cast<bool>(parsed)) << line;
  const obs::json::Value& v = parsed.value();
  EXPECT_EQ(v.string_at("kind"), "query_finished");
  EXPECT_EQ(v.string_at("tag"), "q-17");
  EXPECT_EQ(v.number_at("a"), 6.0);
  EXPECT_EQ(v.number_at("b"), 1500.0);
  EXPECT_NEAR(v.number_at("x"), 12.5, 1e-9);
  EXPECT_GT(v.number_at("ts_us"), 0.0);
  EXPECT_GT(v.number_at("tid"), 0.0);
  // The ambient correlation id is stamped into the event and survives
  // the JSONL round trip exactly (48-bit ids are double-exact).
  EXPECT_EQ(static_cast<obs::QueryId>(v.number_at("qid")), qid);
  obs::flight::reset();
}

TEST(FlightRecorder, KindNamesAreStableWireNames) {
  EXPECT_STREQ(obs::flight::event_kind_name(obs::flight::EventKind::kCrashSignal),
               "crash_signal");
  EXPECT_STREQ(obs::flight::event_kind_name(obs::flight::EventKind::kQueryShed),
               "query_shed");
  EXPECT_STREQ(obs::flight::event_kind_name(static_cast<obs::flight::EventKind>(9999)),
               "unknown");
}

TEST(FlightRecorder, DisabledRecorderDropsNothingIntoTheRings) {
  SKIP_IF_OBS_DISABLED();
  obs::flight::reset();
  obs::flight::set_enabled(false);
  obs::flight::record(obs::flight::EventKind::kCacheHit, "off", 1);
  obs::flight::set_enabled(true);
  EXPECT_TRUE(events_of_kind(obs::flight::EventKind::kCacheHit).empty());
  obs::flight::reset();
}

// The TSan target: writers on their own rings, one reader snapshotting
// concurrently. Per-ring append order must survive the merge, and no
// event may be torn (kind/a agree about the writer).
TEST(FlightRecorder, CrossThreadRecordingKeepsPerRingOrderUnderAReader) {
  SKIP_IF_OBS_DISABLED();
  obs::flight::reset();
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& r : obs::flight::snapshot()) {
        // A torn event would pair a kCacheStore kind with another
        // writer's payload scheme; b always mirrors a here.
        ASSERT_EQ(r.event.b, r.event.a + 1);
      }
    }
  });
  // Writers hold an exit barrier: a ring is released for reuse at thread
  // exit, so on a small machine a writer scheduled to completion before
  // the others start would hand its ring to the next writer and collapse
  // the distinct-rings property this test asserts.
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w)
    writers.emplace_back([w, &done] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t a = (w << 32) | i;
        obs::flight::record(obs::flight::EventKind::kCacheStore, "w", a, a + 1);
      }
      done.fetch_add(1, std::memory_order_relaxed);
      while (done.load(std::memory_order_relaxed) < kWriters) std::this_thread::yield();
    });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Quiescent snapshot: per-tid indices strictly increase and per-writer
  // payload sequences stay in append order.
  std::set<std::uint32_t> tids;
  const auto stores = events_of_kind(obs::flight::EventKind::kCacheStore);
  EXPECT_FALSE(stores.empty());
  for (const auto& r : stores) tids.insert(r.tid);
  EXPECT_GE(tids.size(), 2u);  // distinct threads landed on distinct rings
  for (std::uint32_t tid : tids) {
    std::uint64_t prev = 0;
    bool first = true;
    for (const auto& r : stores) {
      if (r.tid != tid) continue;
      if (!first) {
        EXPECT_GT(r.index, prev);
      }
      prev = r.index;
      first = false;
    }
  }
  EXPECT_EQ(obs::flight::total_recorded(), kWriters * kPerWriter);
  obs::flight::reset();
}

TEST(FlightEventLog, AppendsParseableRecordsAndFlagsSlowOnes) {
  TempDir tmp("lrd-eventlog");
  const std::string path = (tmp.path / "access.jsonl").string();
  ASSERT_TRUE(obs::EventLog::global().open(path, 5.0));
  EXPECT_TRUE(obs::EventLog::global().active());

  obs::AccessRecord fast;
  fast.tool = "test";
  fast.id = "q\"uote";  // escaping must hold
  fast.op = "solve";
  fast.status = "ok";
  fast.wall_ms = 1.25;
  obs::EventLog::global().append(fast);

  obs::AccessRecord slow = fast;
  slow.id = "slow-one";
  slow.wall_ms = 50.0;
  slow.queue_ms = 3.0;
  slow.cache_hit = true;
  slow.cache_tier = "disk";
  slow.diagnostic = "took a while";
  obs::EventLog::global().append(slow);
  obs::EventLog::global().close();
  EXPECT_FALSE(obs::EventLog::global().active());

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto first = obs::json::parse(line);
  ASSERT_TRUE(static_cast<bool>(first)) << line;
  EXPECT_EQ(first.value().string_at("schema"), "lrd-access-v1");
  EXPECT_EQ(first.value().string_at("id"), "q\"uote");
  ASSERT_NE(first.value().find("slow"), nullptr);
  EXPECT_FALSE(first.value().find("slow")->as_bool());

  ASSERT_TRUE(std::getline(in, line));
  auto second = obs::json::parse(line);
  ASSERT_TRUE(static_cast<bool>(second)) << line;
  EXPECT_TRUE(second.value().find("slow")->as_bool());
  EXPECT_EQ(second.value().string_at("cache_tier"), "disk");
  EXPECT_EQ(second.value().string_at("diagnostic"), "took a while");
}

TEST(FlightEventLog, InactiveLogIgnoresAppends) {
  obs::EventLog::global().close();
  obs::AccessRecord rec;
  rec.tool = "test";
  obs::EventLog::global().append(rec);  // must not crash or write anywhere
  EXPECT_FALSE(obs::EventLog::global().active());
}

TEST(BundleDump, OnDemandDumpWritesAParseableBundleWithTheFlightTail) {
  SKIP_IF_OBS_DISABLED();
  TempDir tmp("lrd-bundle");
  obs::flight::reset();
  obs::flight::record(obs::flight::EventKind::kQueryFinished, "bundle-q", 0, 10, 2.0);

  obs::bundle::Config cfg;
  cfg.dir = tmp.path.string();
  cfg.tool = "lrd_tests";
  cfg.config_json = "{ \"testing\": true }";
  cfg.install_crash_handler = false;
  obs::bundle::configure(cfg);
  ASSERT_TRUE(obs::bundle::configured());
  obs::bundle::set_cache_stats_provider(
      [] { return std::string("{ \"hits\": 3 }"); });

  const std::string dir = obs::bundle::dump("unit_test");
  ASSERT_FALSE(dir.empty());
  auto manifest = obs::json::parse_file(dir + "/bundle.json");
  ASSERT_TRUE(static_cast<bool>(manifest));
  EXPECT_EQ(manifest.value().string_at("schema"), "lrd-bundle-v1");
  EXPECT_EQ(manifest.value().string_at("tool"), "lrd_tests");
  EXPECT_EQ(manifest.value().string_at("reason"), "unit_test");
  ASSERT_NE(manifest.value().find("crash"), nullptr);
  EXPECT_FALSE(manifest.value().find("crash")->as_bool());

  const std::string flight = slurp(dir + "/flight.jsonl");
  EXPECT_NE(flight.find("bundle-q"), std::string::npos);
  // The dump records its own kDump breadcrumb before writing.
  EXPECT_NE(flight.find("\"dump\""), std::string::npos);
  EXPECT_TRUE(static_cast<bool>(obs::json::parse_file(dir + "/build.json")));
  EXPECT_TRUE(static_cast<bool>(obs::json::parse_file(dir + "/config.json")));
  EXPECT_TRUE(static_cast<bool>(obs::json::parse_file(dir + "/metrics.json")));
  auto cache = obs::json::parse_file(dir + "/cache.json");
  ASSERT_TRUE(static_cast<bool>(cache));
  EXPECT_EQ(cache.value().number_at("hits"), 3.0);

  obs::bundle::set_cache_stats_provider(nullptr);
  obs::bundle::reset_for_tests();
  EXPECT_EQ(obs::bundle::dump("after_reset"), "");
  obs::flight::reset();
}

TEST(BundleDump, IncidentDumpsAreRateLimited) {
  SKIP_IF_OBS_DISABLED();
  TempDir tmp("lrd-bundle-rate");
  obs::bundle::Config cfg;
  cfg.dir = tmp.path.string();
  cfg.tool = "lrd_tests";
  cfg.install_crash_handler = false;
  cfg.min_incident_interval_ms = 60000;
  obs::bundle::configure(cfg);
  EXPECT_FALSE(obs::bundle::dump_incident("deadline_exceeded").empty());
  EXPECT_TRUE(obs::bundle::dump_incident("deadline_exceeded").empty());
  obs::bundle::reset_for_tests();
}

TEST(BundleDump, UnconfiguredDumperReturnsEmpty) {
  obs::bundle::reset_for_tests();
  EXPECT_FALSE(obs::bundle::configured());
  EXPECT_EQ(obs::bundle::dump("nope"), "");
  EXPECT_EQ(obs::bundle::dump_incident("nope"), "");
}

// Fork-based crash-path test: the child arms the crash handlers, leaves
// a breadcrumb in its flight ring, then dies of SIGABRT. The parent
// asserts the death was by that signal AND that the crash bundle the
// handler wrote (async-signal-safe path) parses and carries the
// breadcrumb plus the synthesized crash_signal event. Deliberately not
// in the TSan CI filter: fork-and-die is not a race probe.
TEST(BundleCrash, CrashHandlerWritesAParseableBundleFromTheSignal) {
  SKIP_IF_OBS_DISABLED();
  TempDir tmp("lrd-crash");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: no gtest machinery from here on; _exit on any failure so a
    // broken path reads as "wrong exit" rather than a bogus pass.
    obs::flight::reset();
    obs::flight::record(obs::flight::EventKind::kFailpoint, "test.crash_site", 5);
    obs::bundle::Config cfg;
    cfg.dir = tmp.path.string();
    cfg.tool = "lrd_tests";
    cfg.config_json = "{ \"crash\": \"test\" }";
    cfg.install_crash_handler = true;
    obs::bundle::configure(cfg);
    ::raise(SIGABRT);
    ::_exit(0);  // unreachable when the handler re-raises correctly
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited normally instead of dying of SIGABRT";
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const fs::path bundle = tmp.path / ("crash-" + std::to_string(pid));
  ASSERT_TRUE(fs::exists(bundle / "bundle.json")) << bundle;
  auto manifest = obs::json::parse_file((bundle / "bundle.json").string());
  ASSERT_TRUE(static_cast<bool>(manifest));
  EXPECT_EQ(manifest.value().string_at("schema"), "lrd-bundle-v1");
  ASSERT_NE(manifest.value().find("crash"), nullptr);
  EXPECT_TRUE(manifest.value().find("crash")->as_bool());
  EXPECT_EQ(manifest.value().number_at("signal"), static_cast<double>(SIGABRT));

  const std::string flight = slurp(bundle / "flight.jsonl");
  EXPECT_NE(flight.find("test.crash_site"), std::string::npos)
      << "triggering event missing from the crash tail";
  EXPECT_NE(flight.find("crash_signal"), std::string::npos);
  // Every line of the handler-formatted tail must be valid JSON.
  std::istringstream lines(flight);
  std::string line;
  std::size_t parsed_lines = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(static_cast<bool>(obs::json::parse(line))) << line;
    ++parsed_lines;
  }
  EXPECT_GE(parsed_lines, 2u);
  EXPECT_TRUE(static_cast<bool>(obs::json::parse_file((bundle / "build.json").string())));
  EXPECT_TRUE(static_cast<bool>(obs::json::parse_file((bundle / "config.json").string())));
}

// Crash-path correlation: the child arms the profiler in manual mode,
// takes a sample inside a QueryScope, then dies. The bundle's
// profile.jsonl (raw crash tail, written by the signal handler) must
// carry a sample stamped with the crashing query's id. Like the other
// fork test, deliberately not in the TSan CI filter.
TEST(BundleCrash, CrashBundleCarriesProfileTailWithTheCrashingQueryId) {
  SKIP_IF_OBS_DISABLED();
  TempDir tmp("lrd-crash-prof");
  const obs::QueryId qid = obs::mint_query_id();  // minted pre-fork so the parent knows it
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    obs::flight::reset();
    obs::profiler::reset();
    obs::profiler::Options popt;
    popt.interval_us = 0;  // manual samples only: deterministic tail
    if (!obs::profiler::start(popt)) ::_exit(10);
    obs::bundle::Config cfg;
    cfg.dir = tmp.path.string();
    cfg.tool = "lrd_tests";
    cfg.install_crash_handler = true;
    obs::bundle::configure(cfg);
    {
      obs::QueryScope scope(qid);
      obs::profiler::sample_now();
      ::raise(SIGABRT);
    }
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const fs::path bundle = tmp.path / ("crash-" + std::to_string(pid));
  const fs::path profile = bundle / "profile.jsonl";
  ASSERT_TRUE(fs::exists(profile)) << bundle;
  bool found = false;
  std::istringstream lines(slurp(profile));
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto parsed = obs::json::parse(line);
    ASSERT_TRUE(static_cast<bool>(parsed)) << line;
    EXPECT_EQ(parsed.value().string_at("schema"), "lrd-profile-v1");
    if (static_cast<obs::QueryId>(parsed.value().number_at("query_id")) == qid) found = true;
  }
  EXPECT_TRUE(found) << "no profile sample carries the crashing query's id";
}

TEST(Doctor, TriagesABundleIntoIncidentsSlowQueriesAndCacheSections) {
  SKIP_IF_OBS_DISABLED();
  TempDir tmp("lrd-doctor");
  obs::flight::reset();
  obs::flight::record(obs::flight::EventKind::kQueryAdmitted, "", 2);
  obs::flight::record(obs::flight::EventKind::kCacheMiss, "", 11);
  obs::flight::record(obs::flight::EventKind::kQueryFinished, "slowest", 0, 900, 45.0);
  obs::flight::record(obs::flight::EventKind::kQueryFinished, "fast", 0, 100, 1.0);
  obs::flight::record(obs::flight::EventKind::kQueryShed, "shed-q", 64);
  obs::flight::record(obs::flight::EventKind::kDeadlineExceeded, "solve", 0, 0, 250.0);

  obs::bundle::Config cfg;
  cfg.dir = tmp.path.string();
  cfg.tool = "lrd_tests";
  cfg.install_crash_handler = false;
  obs::bundle::configure(cfg);
  const std::string dir = obs::bundle::dump("doctor_test");
  ASSERT_FALSE(dir.empty());

  auto text = obs::doctor::triage_bundle(dir);
  ASSERT_TRUE(static_cast<bool>(text)) << text.diagnostics().describe();
  EXPECT_NE(text.value().find("incidents (2)"), std::string::npos) << text.value();
  EXPECT_NE(text.value().find("query_shed"), std::string::npos);
  EXPECT_NE(text.value().find("deadline_exceeded"), std::string::npos);
  EXPECT_NE(text.value().find("slowest"), std::string::npos);
  EXPECT_NE(text.value().find("== cache =="), std::string::npos);

  obs::doctor::Options jopt;
  jopt.json = true;
  auto json = obs::doctor::triage_bundle(dir, jopt);
  ASSERT_TRUE(static_cast<bool>(json));
  auto parsed = obs::json::parse(json.value());
  ASSERT_TRUE(static_cast<bool>(parsed)) << json.value();
  EXPECT_EQ(parsed.value().string_at("kind"), "doctor");
  EXPECT_EQ(parsed.value().string_at("source"), "bundle");
  ASSERT_NE(parsed.value().find("incidents"), nullptr);
  ASSERT_NE(parsed.value().find("slow_queries"), nullptr);

  // The slow table prefers per-query finishes and ranks by wall time.
  const std::string& body = json.value();
  EXPECT_LT(body.find("slowest"), body.find("\"fast\""));

  obs::bundle::reset_for_tests();
  obs::flight::reset();
}

TEST(Doctor, TriagesAnAccessLogAndRejectsGarbage) {
  TempDir tmp("lrd-doctor-log");
  const std::string path = (tmp.path / "access.jsonl").string();
  ASSERT_TRUE(obs::EventLog::global().open(path, 2.0));
  obs::AccessRecord rec;
  rec.tool = "lrdq_serve";
  rec.id = "a1";
  rec.op = "solve";
  rec.status = "ok";
  rec.wall_ms = 10.0;
  obs::EventLog::global().append(rec);
  rec.id = "a2";
  rec.status = "deadline_exceeded";
  rec.code = 6;
  rec.wall_ms = 0.5;
  obs::EventLog::global().append(rec);
  obs::EventLog::global().close();

  auto text = obs::doctor::triage_access_log(path);
  ASSERT_TRUE(static_cast<bool>(text)) << text.diagnostics().describe();
  EXPECT_NE(text.value().find("a1"), std::string::npos);
  EXPECT_NE(text.value().find("deadline_exceeded"), std::string::npos);

  obs::doctor::Options jopt;
  jopt.json = true;
  auto json = obs::doctor::triage_access_log(path, jopt);
  ASSERT_TRUE(static_cast<bool>(json));
  auto parsed = obs::json::parse(json.value());
  ASSERT_TRUE(static_cast<bool>(parsed));
  EXPECT_EQ(parsed.value().string_at("kind"), "doctor");
  EXPECT_EQ(parsed.value().number_at("records"), 2.0);
  EXPECT_EQ(parsed.value().number_at("failed"), 1.0);

  const std::string garbage = (tmp.path / "garbage.jsonl").string();
  {
    std::ofstream out(garbage);
    out << "not json at all\n{{{\n";
  }
  EXPECT_FALSE(static_cast<bool>(obs::doctor::triage_access_log(garbage)));
  EXPECT_FALSE(static_cast<bool>(obs::doctor::triage_bundle((tmp.path / "missing").string())));
}

TEST(Doctor, QueryJoinRendersMatchingArtifactsAcrossSources) {
  SKIP_IF_OBS_DISABLED();
  TempDir tmp("lrd-doctor-query");
  const obs::QueryId qid = obs::mint_query_id();
  const obs::QueryId other = obs::mint_query_id();

  // Access log: one record for our query, one for another.
  const std::string log_path = (tmp.path / "access.jsonl").string();
  ASSERT_TRUE(obs::EventLog::global().open(log_path, 0.0));
  obs::AccessRecord rec;
  rec.tool = "lrd_tests";
  rec.id = "join-me";
  rec.op = "solve";
  rec.status = "ok";
  rec.query_id = qid;
  obs::EventLog::global().append(rec);
  rec.id = "not-me";
  rec.query_id = other;
  obs::EventLog::global().append(rec);
  obs::EventLog::global().close();

  // Bundle: flight events recorded under the query's scope plus noise.
  obs::flight::reset();
  {
    obs::QueryScope scope(qid);
    obs::flight::record(obs::flight::EventKind::kSolveFinish, "converged", 12, 256, 2.5);
  }
  obs::flight::record(obs::flight::EventKind::kCacheMiss, "", 1);
  obs::bundle::Config cfg;
  cfg.dir = tmp.path.string();
  cfg.tool = "lrd_tests";
  cfg.install_crash_handler = false;
  obs::bundle::configure(cfg);
  const std::string bundle_dir = obs::bundle::dump("query_join_test");
  ASSERT_FALSE(bundle_dir.empty());

  // Profile: one matching folded record, one foreign.
  const std::string prof_path = (tmp.path / "prof.jsonl").string();
  {
    std::ofstream out(prof_path);
    out << "{\"schema\": \"lrd-profile-v1\", \"query_id\": " << qid
        << ", \"stack\": \"main;solve;level\", \"count\": 3, \"interval_us\": 0}\n";
    out << "{\"schema\": \"lrd-profile-v1\", \"query_id\": " << other
        << ", \"stack\": \"main;other\", \"count\": 1, \"interval_us\": 0}\n";
  }

  obs::doctor::QuerySources src;
  src.access_log = log_path;
  src.bundle_dir = bundle_dir;
  src.profile = prof_path;
  auto text = obs::doctor::triage_query(qid, src);
  ASSERT_TRUE(static_cast<bool>(text)) << text.diagnostics().describe();
  EXPECT_NE(text.value().find("join-me"), std::string::npos) << text.value();
  EXPECT_EQ(text.value().find("not-me"), std::string::npos);
  EXPECT_NE(text.value().find("solve_finish"), std::string::npos);
  EXPECT_NE(text.value().find("main;solve;level"), std::string::npos);
  EXPECT_EQ(text.value().find("main;other"), std::string::npos);

  obs::doctor::Options jopt;
  jopt.json = true;
  auto json = obs::doctor::triage_query(qid, src, jopt);
  ASSERT_TRUE(static_cast<bool>(json));
  auto parsed = obs::json::parse(json.value());
  ASSERT_TRUE(static_cast<bool>(parsed)) << json.value();
  EXPECT_EQ(parsed.value().string_at("source"), "query");
  EXPECT_EQ(static_cast<obs::QueryId>(parsed.value().number_at("query_id")), qid);
  const obs::json::Value* prof = parsed.value().find("profile");
  ASSERT_NE(prof, nullptr);
  EXPECT_EQ(prof->number_at("samples"), 3.0);

  // No sources at all is a config error, not an empty report.
  EXPECT_FALSE(static_cast<bool>(obs::doctor::triage_query(qid, obs::doctor::QuerySources{})));

  obs::bundle::reset_for_tests();
  obs::flight::reset();
}

}  // namespace
