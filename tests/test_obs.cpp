// Tests of the lrd::obs layer: counter totals under threads, log-linear
// histogram quantile recovery and merge associativity across shards,
// span nesting/ordering in the exported Chrome trace, registry export
// formats, and solver convergence telemetry on a real solve.
//
// The Obs* suites also run under the ThreadSanitizer CI job (see
// .github/workflows/ci.yml) to pin down the lock-free recording paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dist/simple_epochs.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "obs/version.hpp"
#include "queueing/solver.hpp"

namespace {

using namespace lrd;

/// Extracts (ts, dur) of the first complete event named `name` from a
/// Chrome trace-event JSON string (events serialize name before ts/dur).
struct CompleteEvent {
  double ts = 0.0;
  double dur = 0.0;
};
std::optional<CompleteEvent> find_complete(const std::string& json, const std::string& name) {
  const std::string needle = "\"name\":\"" + name + "\"";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const std::size_t ts_pos = json.find("\"ts\":", pos);
  const std::size_t dur_pos = json.find("\"dur\":", pos);
  if (ts_pos == std::string::npos || dur_pos == std::string::npos) return std::nullopt;
  CompleteEvent ev;
  if (std::sscanf(json.c_str() + ts_pos, "\"ts\":%lf", &ev.ts) != 1) return std::nullopt;
  if (std::sscanf(json.c_str() + dur_pos, "\"dur\":%lf", &ev.dur) != 1) return std::nullopt;
  return ev;
}

/// Every recording test is meaningless in a -DLRD_DISABLE_OBS build.
#define SKIP_IF_OBS_DISABLED()                                      \
  if constexpr (!obs::kObsEnabled) {                                \
    GTEST_SKIP() << "obs compiled out (LRD_DISABLE_OBS)";           \
  }

TEST(ObsCounter, SingleThreadTotal) {
  obs::Counter c;
  for (int i = 0; i < 1000; ++i) c.inc();
  c.inc(42);
  if constexpr (obs::kObsEnabled) {
    EXPECT_EQ(c.value(), 1042u);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
}

TEST(ObsCounter, ShardedIncrementsSumExactly) {
  SKIP_IF_OBS_DISABLED();
  obs::Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < kThreads; ++w)
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGauge, SetAndAdd) {
  SKIP_IF_OBS_DISABLED();
  obs::Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.25);
}

TEST(ObsHistogram, BucketEdgesRoundTrip) {
  // bucket_index must be the inverse of the edge functions: every value
  // lands in a bucket whose [lower, upper) range contains it.
  for (double v : {1e-9, 0.001, 0.5, 1.0, 1.5, 3.0, 1e6}) {
    const std::size_t i = obs::Histogram::bucket_index(v);
    EXPECT_GE(v, obs::Histogram::bucket_lower(i)) << "v = " << v;
    EXPECT_LT(v, obs::Histogram::bucket_upper(i)) << "v = " << v;
  }
  // Zero and negative go to underflow, huge values to overflow.
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1e300), obs::Histogram::kBuckets - 1);
}

TEST(ObsHistogram, QuantileRecovery) {
  SKIP_IF_OBS_DISABLED();
  // Uniform grid on [1, 1000]: the q-quantile is ~ 1 + 999 q; the
  // log-linear buckets bound the relative error by 2^(1/8) - 1 ~ 9%.
  obs::Histogram h;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    h.observe(1.0 + 999.0 * static_cast<double>(i) / (kN - 1));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kN));
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double expected = 1.0 + 999.0 * q;
    EXPECT_NEAR(h.quantile(q), expected, 0.10 * expected) << "q = " << q;
  }
  // Sum is exact (modulo fp addition order), not bucketed.
  EXPECT_NEAR(h.sum(), kN * (1.0 + 1000.0) / 2.0, 1e-3 * kN);
}

TEST(ObsHistogram, EmptyQuantileIsNaN) {
  obs::Histogram h;
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(ObsHistogram, MergeIsAssociativeAndCommutative) {
  SKIP_IF_OBS_DISABLED();
  // Three histograms with disjoint deterministic streams; merging them
  // in any grouping/order must produce identical bucket counts — the
  // property that makes per-thread shard aggregation order-independent.
  obs::Histogram a, b, c;
  std::uint64_t x = 12345;
  const auto next = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return 1e-6 * static_cast<double>(x >> 40);
  };
  for (int i = 0; i < 5000; ++i) a.observe(next());
  for (int i = 0; i < 3000; ++i) b.observe(next());
  for (int i = 0; i < 7000; ++i) c.observe(next());

  obs::Histogram ab_c;  // (a + b) + c
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  obs::Histogram c_ba;  // c + (b + a)
  c_ba.merge(c);
  c_ba.merge(b);
  c_ba.merge(a);

  EXPECT_EQ(ab_c.count(), 15000u);
  EXPECT_EQ(ab_c.snapshot(), c_ba.snapshot());
  EXPECT_NEAR(ab_c.sum(), c_ba.sum(), 1e-9 * std::abs(ab_c.sum()));
}

TEST(ObsHistogram, ConcurrentObserveKeepsEverySample) {
  SKIP_IF_OBS_DISABLED();
  obs::Histogram h;
  constexpr std::size_t kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < kThreads; ++w)
    pool.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(0.5 + static_cast<double>(w));
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(h.count(), kThreads * static_cast<std::uint64_t>(kPerThread));
}

TEST(ObsRegistry, StableAddressesAndExports) {
  SKIP_IF_OBS_DISABLED();
  obs::Registry reg;
  obs::Counter& c1 = reg.counter("test_requests_total", "requests served");
  obs::Counter& c2 = reg.counter("test_requests_total", "ignored duplicate help");
  EXPECT_EQ(&c1, &c2);  // find-or-create hands out one stable address
  c1.inc(7);
  reg.gauge("test_workers", "live workers").set(3.0);
  reg.histogram("test_latency_seconds", "latency").observe(0.25);
  EXPECT_EQ(reg.size(), 3u);

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE test_requests_total counter"), std::string::npos);
  EXPECT_NE(prom.find("test_requests_total 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_workers gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_latency_seconds histogram"), std::string::npos);
  EXPECT_NE(prom.find("test_latency_seconds_count 1"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\"} 1"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"test_requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"test_workers\""), std::string::npos);
  EXPECT_NE(json.find("\"test_latency_seconds\""), std::string::npos);
}

TEST(ObsTrace, SpanNestingAndOrdering) {
  SKIP_IF_OBS_DISABLED();
  obs::TraceSession::enable(256);
  obs::TraceSession::clear();
  {
    obs::Span outer("obs_test.outer", "test");
    obs::Span inner("obs_test.inner", "test", "\"k\": 1");
    (void)outer;
    (void)inner;
  }
  obs::instant("obs_test.mark", "test");
  obs::TraceSession::disable();

  EXPECT_GE(obs::TraceSession::recorded(), 3u);
  const std::string json = obs::TraceSession::to_json();
  obs::TraceSession::clear();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // the instant
  const auto outer = find_complete(json, "obs_test.outer");
  const auto inner = find_complete(json, "obs_test.inner");
  ASSERT_TRUE(outer.has_value());
  ASSERT_TRUE(inner.has_value());
  // The inner span starts no earlier and is fully contained in the outer.
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + 1e-3);
  EXPECT_NE(json.find("\"k\": 1"), std::string::npos);  // annotation survived
}

TEST(ObsTrace, RingBufferDropsOldestNotNewest) {
  SKIP_IF_OBS_DISABLED();
  obs::TraceSession::enable(16);  // minimum capacity
  obs::TraceSession::clear();
  for (int i = 0; i < 64; ++i) obs::instant("obs_test.flood", "test");
  obs::instant("obs_test.last", "test");
  obs::TraceSession::disable();
  EXPECT_GE(obs::TraceSession::dropped(), 1u);
  const std::string json = obs::TraceSession::to_json();
  obs::TraceSession::clear();
  // The most recent event survives the ring wrap.
  EXPECT_NE(json.find("\"obs_test.last\""), std::string::npos);
}

TEST(ObsTrace, ConcurrentSpansRecordOnAllThreads) {
  SKIP_IF_OBS_DISABLED();
  obs::TraceSession::enable(1 << 10);
  obs::TraceSession::clear();
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < kThreads; ++w)
    pool.emplace_back([] {
      obs::set_thread_name("obs-test-thread");
      for (int i = 0; i < 100; ++i) {
        obs::Span span("obs_test.worker", "test");
        (void)span;
      }
    });
  for (auto& th : pool) th.join();
  obs::TraceSession::disable();
  EXPECT_GE(obs::TraceSession::recorded(), kThreads * 100u);
  obs::TraceSession::clear();
}

TEST(ObsTelemetry, RealSolveProducesMonotoneAudit) {
  SKIP_IF_OBS_DISABLED();
  // A lossy three-rate solve that needs at least one refinement level.
  dist::Marginal m({1.0, 2.5, 4.0}, {0.4, 0.2, 0.4});
  auto d = std::make_shared<const dist::ExponentialEpoch>(2.0);
  queueing::FluidQueueSolver s(m, d, 2.5, 1.0);
  queueing::SolverConfig cfg;
  cfg.target_relative_gap = 0.05;
  cfg.collect_telemetry = true;
  const auto r = s.solve(cfg);
  ASSERT_TRUE(r.converged);
  ASSERT_FALSE(r.telemetry.empty());

  std::size_t iterations = 0;
  std::size_t prev_bins = 0;
  for (const auto& level : r.telemetry.levels) {
    EXPECT_GT(level.bins, prev_bins);  // bins double per refinement
    prev_bins = level.bins;
    iterations += level.iterations;
    EXPECT_GE(level.bracket_width(), 0.0);  // Prop. II.1: a true bracket
    EXPECT_GE(level.occupancy_gap, 0.0);
    EXPECT_GE(level.wall_seconds, 0.0);
  }
  // Every iteration is accounted to exactly one level.
  EXPECT_EQ(iterations, r.iterations);
  // The level the solver stopped in matches the result.
  EXPECT_EQ(r.telemetry.levels.back().bins, r.final_bins);
  // Refinement tightens the audit: the final bracket is no wider than
  // the first level's.
  EXPECT_LE(r.telemetry.levels.back().bracket_width(),
            r.telemetry.levels.front().bracket_width() + 1e-12);
  EXPECT_GT(r.telemetry.total_seconds, 0.0);

  const std::string json = r.telemetry.to_json();
  EXPECT_NE(json.find("\"levels\""), std::string::npos);
  EXPECT_NE(json.find("\"bracket_lower\""), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\""), std::string::npos);
}

TEST(ObsTelemetry, OffByDefault) {
  dist::Marginal m = dist::Marginal::constant(4.0);
  auto d = std::make_shared<const dist::ExponentialEpoch>(1.0);
  queueing::FluidQueueSolver s(m, d, 3.0, 2.0);
  const auto r = s.solve();
  EXPECT_TRUE(r.telemetry.empty());
  EXPECT_NE(r.telemetry.to_json().find("\"levels\": []"), std::string::npos);
}

TEST(ObsVersion, StringNamesToolAndCacheSalt) {
  const std::string v = obs::version_string("lrdq_test");
  EXPECT_NE(v.find("lrdq_test"), std::string::npos);
  EXPECT_NE(v.find("lrd-solver-cache"), std::string::npos);  // cache version salt
}

TEST(ObsClock, MonotoneHelpers) {
  const obs::SteadyTime t0 = obs::now();
  EXPECT_GE(obs::seconds_since(t0), 0.0);
  EXPECT_GE(obs::seconds_between(t0, obs::now()), 0.0);
  const double u0 = obs::process_uptime_us();
  EXPECT_GE(obs::process_uptime_us(), u0);
}

}  // namespace
