// Shared helpers for the test suite: simple adaptive quadrature and
// moment estimation used to cross-check closed forms.
#pragma once

#include <cmath>
#include <functional>

namespace lrd::testing {

/// Simpson's rule on [a, b] with n (even) panels.
inline double simpson(const std::function<double(double)>& f, double a, double b, int n = 4096) {
  if (n % 2 != 0) ++n;
  const double h = (b - a) / n;
  double s = f(a) + f(b);
  for (int i = 1; i < n; ++i) s += f(a + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  return s * h / 3.0;
}

/// Integrates a non-negative decreasing tail function from a to infinity
/// by doubling panels until the increment is negligible.
inline double integrate_tail(const std::function<double(double)>& f, double a,
                             double scale_hint = 1.0) {
  double total = 0.0;
  double left = a;
  double width = scale_hint;
  for (int k = 0; k < 200; ++k) {
    const double piece = simpson(f, left, left + width, 512);
    total += piece;
    left += width;
    width *= 2.0;
    if (piece < 1e-14 * (total + 1e-300) && k > 3) break;
  }
  return total;
}

}  // namespace lrd::testing
