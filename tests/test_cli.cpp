// Regression tests for the CLI forensics wiring (tools/cli_common.hpp):
// an explicit flag must always beat its env-var fallback, and an
// explicitly empty flag value must disable the feature outright even
// when the env var is set. These resolutions feed every lrdq_* tool.
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli_common.hpp"
#include "obs/bundle.hpp"
#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace {

using namespace lrd;

/// Builds cli::Args from a flag list, with argv[0] supplied.
cli::Args make_args(std::vector<std::string> tokens,
                    std::vector<std::string> known = {},
                    std::vector<std::string> flags = {}) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // keep c_str()s alive per call
  storage = std::move(tokens);
  storage.insert(storage.begin(), "lrd_tests");
  argv.reserve(storage.size());
  for (auto& s : storage) argv.push_back(s.data());
  return cli::Args(static_cast<int>(argv.size()), argv.data(), std::move(known),
                   std::move(flags));
}

/// Scoped env var: sets on construction, restores on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (saved_.empty())
      ::unsetenv(name_.c_str());
    else
      ::setenv(name_.c_str(), saved_.c_str(), 1);
  }

 private:
  std::string name_;
  std::string saved_;
};

class ForensicsPrecedence : public ::testing::Test {
 protected:
  void SetUp() override {
    if constexpr (!obs::kObsEnabled) GTEST_SKIP() << "obs layer compiled out";
    dir_ = std::filesystem::temp_directory_path() /
           ("lrd-cli-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    obs::EventLog::global().close();
    obs::bundle::reset_for_tests();
    obs::profiler::stop();
    obs::profiler::reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }
  std::string path(const char* leaf) const { return (dir_ / leaf).string(); }

  std::filesystem::path dir_;
};

TEST_F(ForensicsPrecedence, ExplicitAccessLogFlagBeatsTheEnvVar) {
  const std::string env_log = path("env.jsonl");
  const std::string flag_log = path("flag.jsonl");
  ScopedEnv env("LRDQ_ACCESS_LOG", env_log.c_str());

  const cli::Args args = make_args({"--access-log", flag_log});
  const cli::ForensicsSetup setup = cli::setup_forensics(args, "lrd_tests");
  EXPECT_EQ(setup.access_log, flag_log);
  EXPECT_TRUE(obs::EventLog::global().active());
  obs::EventLog::global().close();
  EXPECT_TRUE(std::filesystem::exists(flag_log)) << "the flag's path was opened";
  EXPECT_FALSE(std::filesystem::exists(env_log)) << "the env path was never touched";
}

TEST_F(ForensicsPrecedence, EnvVarAppliesOnlyWhenTheFlagIsAbsent) {
  const std::string env_log = path("env_only.jsonl");
  ScopedEnv env("LRDQ_ACCESS_LOG", env_log.c_str());

  const cli::ForensicsSetup setup = cli::setup_forensics(make_args({}), "lrd_tests");
  EXPECT_EQ(setup.access_log, env_log);
  EXPECT_TRUE(obs::EventLog::global().active());
}

TEST_F(ForensicsPrecedence, ExplicitlyEmptyFlagDisablesDespiteTheEnvVar) {
  ScopedEnv log_env("LRDQ_ACCESS_LOG", path("ignored.jsonl").c_str());
  ScopedEnv dump_env("LRDQ_DUMP_DIR", path("ignored-dumps").c_str());
  ScopedEnv prof_env("LRDQ_PROFILE", path("ignored.prof").c_str());

  const cli::Args args =
      make_args({"--access-log=", "--dump-dir=", "--profile-out="});
  const cli::ForensicsSetup setup = cli::setup_forensics(args, "lrd_tests");
  EXPECT_TRUE(setup.access_log.empty());
  EXPECT_TRUE(setup.dump_dir.empty());
  EXPECT_TRUE(setup.profile_path.empty());
  EXPECT_FALSE(obs::EventLog::global().active());
  EXPECT_FALSE(obs::profiler::running());
  EXPECT_FALSE(std::filesystem::exists(path("ignored-dumps")));
}

TEST_F(ForensicsPrecedence, ExplicitDumpDirAndProfileBeatTheirEnvVars) {
  ScopedEnv dump_env("LRDQ_DUMP_DIR", path("env-dumps").c_str());
  ScopedEnv prof_env("LRDQ_PROFILE", path("env.prof").c_str());

  const std::string flag_dumps = path("flag-dumps");
  const std::string flag_prof = path("flag.prof");
  const cli::Args args =
      make_args({"--dump-dir", flag_dumps, "--profile-out", flag_prof});
  const cli::ForensicsSetup setup = cli::setup_forensics(args, "lrd_tests");
  EXPECT_EQ(setup.dump_dir, flag_dumps);
  EXPECT_EQ(setup.profile_path, flag_prof);
  EXPECT_TRUE(obs::profiler::running());

  // finish_forensics stops the profiler and writes the flag's path.
  cli::finish_forensics(setup);
  EXPECT_FALSE(obs::profiler::running());
  EXPECT_TRUE(std::filesystem::exists(flag_prof));
  EXPECT_FALSE(std::filesystem::exists(path("env.prof")));
}

}  // namespace
