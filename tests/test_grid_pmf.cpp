#include <gtest/gtest.h>

#include <cmath>

#include "numerics/grid.hpp"
#include "numerics/pmf.hpp"

namespace {

using namespace lrd::numerics;

TEST(Grid, BasicGeometry) {
  Grid g(10.0, 4);
  EXPECT_DOUBLE_EQ(g.step(), 2.5);
  EXPECT_EQ(g.points(), 5u);
  EXPECT_DOUBLE_EQ(g.value(0), 0.0);
  EXPECT_DOUBLE_EQ(g.value(4), 10.0);
}

TEST(Grid, InvalidArguments) {
  EXPECT_THROW(Grid(0.0, 4), std::invalid_argument);
  EXPECT_THROW(Grid(-1.0, 4), std::invalid_argument);
  EXPECT_THROW(Grid(1.0, 0), std::invalid_argument);
}

TEST(Grid, FloorAndCeilBracketTheValue) {
  Grid g(1.0, 100);
  for (double x : {0.0, 0.001, 0.0149, 0.5, 0.995, 1.0}) {
    EXPECT_LE(g.floor_quantize(x), x + 1e-15);
    EXPECT_GE(g.ceil_quantize(x), x - 1e-15);
    EXPECT_LE(g.ceil_quantize(x) - g.floor_quantize(x), g.step() + 1e-15);
  }
}

TEST(Grid, QuantizationClampsOutOfRange) {
  Grid g(5.0, 10);
  EXPECT_EQ(g.floor_index(-3.0), 0u);
  EXPECT_EQ(g.ceil_index(-3.0), 0u);
  EXPECT_EQ(g.floor_index(7.0), 10u);
  EXPECT_EQ(g.ceil_index(7.0), 10u);
}

TEST(Grid, ExactGridPointsAreFixedPoints) {
  Grid g(8.0, 16);
  for (std::size_t j = 0; j <= 16; ++j) {
    EXPECT_EQ(g.floor_index(g.value(j)), j);
    EXPECT_EQ(g.ceil_index(g.value(j)), j);
  }
}

TEST(Grid, RefinementIsNested) {
  // Every coarse grid point must exist in the refined grid (property (v)
  // of Proposition II.1 relies on nesting).
  Grid coarse(3.0, 6);
  Grid fine = coarse.refined(4);
  EXPECT_EQ(fine.bins(), 24u);
  for (std::size_t j = 0; j <= 6; ++j) {
    const double v = coarse.value(j);
    EXPECT_DOUBLE_EQ(fine.floor_quantize(v), v);
    EXPECT_DOUBLE_EQ(fine.ceil_quantize(v), v);
  }
}

TEST(Grid, FinerFloorIsWeaklyLarger) {
  Grid coarse(1.0, 10);
  Grid fine(1.0, 20);
  for (double x = 0.0; x <= 1.0; x += 0.013) {
    EXPECT_LE(coarse.floor_quantize(x), fine.floor_quantize(x) + 1e-15);
    EXPECT_GE(coarse.ceil_quantize(x), fine.ceil_quantize(x) - 1e-15);
  }
}

TEST(Pmf, ConstructionValidation) {
  EXPECT_THROW(Pmf(0.0, 1.0, {}), std::invalid_argument);
  EXPECT_THROW(Pmf(0.0, 0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(Pmf(0.0, 1.0, {-0.5}), std::invalid_argument);
}

TEST(Pmf, MomentsOfFairCoin) {
  Pmf p(0.0, 1.0, {0.5, 0.5});
  EXPECT_DOUBLE_EQ(p.total_mass(), 1.0);
  EXPECT_DOUBLE_EQ(p.mean(), 0.5);
  EXPECT_DOUBLE_EQ(p.variance(), 0.25);
}

TEST(Pmf, OriginShiftsMean) {
  Pmf p(10.0, 2.0, {0.25, 0.5, 0.25});
  EXPECT_DOUBLE_EQ(p.mean(), 12.0);
  EXPECT_DOUBLE_EQ(p.variance(), 2.0);
}

TEST(Pmf, NormalizeRescales) {
  Pmf p(0.0, 1.0, {2.0, 2.0});
  p.normalize();
  EXPECT_DOUBLE_EQ(p.probs()[0], 0.5);
  EXPECT_NEAR(p.total_mass(), 1.0, 1e-15);
}

TEST(Pmf, CdfAndQuantile) {
  Pmf p(0.0, 1.0, {0.2, 0.3, 0.5});
  EXPECT_NEAR(p.cdf(-0.5), 0.0, 1e-15);
  EXPECT_NEAR(p.cdf(0.0), 0.2, 1e-15);
  EXPECT_NEAR(p.cdf(1.0), 0.5, 1e-15);
  EXPECT_NEAR(p.cdf(5.0), 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(p.quantile(0.2), 0.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 2.0);
  EXPECT_THROW(p.quantile(0.0), std::domain_error);
}

TEST(Pmf, ConvolutionOfTwoDiceIsTriangular) {
  Pmf die(1.0, 1.0, std::vector<double>(6, 1.0 / 6.0));
  Pmf sum = convolve(die, die);
  EXPECT_DOUBLE_EQ(sum.origin(), 2.0);
  EXPECT_EQ(sum.size(), 11u);
  EXPECT_NEAR(sum.probs()[5], 6.0 / 36.0, 1e-12);  // Pr{sum = 7}
  EXPECT_NEAR(sum.total_mass(), 1.0, 1e-12);
  EXPECT_NEAR(sum.mean(), 7.0, 1e-12);
}

TEST(Pmf, ConvolveMismatchedStepsThrows) {
  Pmf a(0.0, 1.0, {1.0});
  Pmf b(0.0, 2.0, {1.0});
  EXPECT_THROW(convolve(a, b), std::invalid_argument);
}

TEST(Pmf, SelfConvolveMatchesRepeatedConvolve) {
  Pmf p(0.0, 0.5, {0.3, 0.7});
  Pmf three = p.self_convolve(3);
  Pmf manual = convolve(convolve(p, p), p);
  ASSERT_EQ(three.size(), manual.size());
  for (std::size_t k = 0; k < three.size(); ++k)
    EXPECT_NEAR(three.probs()[k], manual.probs()[k], 1e-12);
  EXPECT_NEAR(three.mean(), 3.0 * p.mean(), 1e-12);
  EXPECT_NEAR(three.variance(), 3.0 * p.variance(), 1e-12);
}

TEST(Pmf, AffinePositiveScale) {
  Pmf p(1.0, 1.0, {0.5, 0.5});
  Pmf q = p.affine(2.0, 3.0);  // values {5, 7}
  EXPECT_DOUBLE_EQ(q.mean(), 2.0 * p.mean() + 3.0);
  EXPECT_DOUBLE_EQ(q.variance(), 4.0 * p.variance());
}

TEST(Pmf, AffineNegativeScaleReversesSupport) {
  Pmf p(0.0, 1.0, {0.2, 0.8});  // values {0, 1}
  Pmf q = p.affine(-1.0, 0.0);  // values {-1, 0} with masses {0.8, 0.2}
  EXPECT_DOUBLE_EQ(q.origin(), -1.0);
  EXPECT_DOUBLE_EQ(q.probs()[0], 0.8);
  EXPECT_DOUBLE_EQ(q.probs()[1], 0.2);
  EXPECT_DOUBLE_EQ(q.mean(), -p.mean());
}

TEST(Pmf, AffineZeroScaleThrows) {
  Pmf p(0.0, 1.0, {1.0});
  EXPECT_THROW(p.affine(0.0, 1.0), std::invalid_argument);
}

TEST(Pmf, TotalVariationDistance) {
  Pmf a(0.0, 1.0, {0.5, 0.5});
  Pmf b(0.0, 1.0, {0.9, 0.1});
  EXPECT_NEAR(total_variation(a, b), 0.4, 1e-12);
  EXPECT_NEAR(total_variation(a, a), 0.0, 1e-15);
  Pmf c(0.0, 1.0, {1.0});
  EXPECT_THROW(total_variation(a, c), std::invalid_argument);
}

}  // namespace
