// Tests of the artifact-analysis side of the observability layer: the
// minimal JSON parser, robust statistics and the overhead clamp, the
// bench-history parser, the noise-aware regression detector (golden
// fixtures: an injected 3x slowdown must flag, within-jitter wobble must
// stay quiet, a telemetry iteration-count regression must flag), the
// trace profiler's self-time/nesting accounting, and the manifest and
// metrics diffs.
//
// Suites are named Obs* so they also run under the ThreadSanitizer CI
// job alongside the recording-path tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/regress.hpp"
#include "obs/report.hpp"

namespace {

using namespace lrd;

obs::json::Value parse_ok(const std::string& text) {
  auto v = obs::json::parse(text);
  EXPECT_TRUE(v.has_value()) << v.status().describe();
  return std::move(v).take();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr) << path;
  std::fputs(content.c_str(), out);
  std::fclose(out);
}

/// One synthetic lrd-bench-v1 history line; values straddle the median
/// by +-mad so the record is self-consistent.
std::string history_line(const std::string& key, double median, double mad,
                         const std::vector<std::pair<std::string, double>>& metrics = {},
                         const std::string& unit = "seconds") {
  std::string metric_text = "{";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (i) metric_text += ",";
    metric_text += "\"" + metrics[i].first + "\":" + obs::json::number_text(metrics[i].second);
  }
  metric_text += "}";
  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      "{\"schema\":\"lrd-bench-v1\",\"bench\":\"fixture\",\"key\":\"%s\",\"unit\":\"%s\","
      "\"warmup\":1,\"repeats\":3,\"median\":%.9g,\"mad\":%.9g,\"min\":%.9g,\"mean\":%.9g,"
      "\"values\":[%.9g,%.9g,%.9g],\"metrics\":%s,"
      "\"env\":{\"git_describe\":\"test\",\"build_type\":\"Release\",\"compiler\":\"test\","
      "\"cpu_count\":4,\"obs_enabled\":true},\"timestamp_unix\":100}",
      key.c_str(), unit.c_str(), median, mad, median - mad, median, median - mad, median,
      median + mad, metric_text.c_str());
  return buf;
}

// --- JSON parser -----------------------------------------------------------

TEST(ObsJsonParser, ParsesNestedDocument) {
  const obs::json::Value v =
      parse_ok(R"({"a":[1,2.5,-3e2],"b":"x\nA","c":null,"d":true,"e":{"f":false}})");
  ASSERT_TRUE(v.is_object());
  const obs::json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a->items()[2].as_number(), -300.0);
  EXPECT_EQ(v.string_at("b"), "x\nA");
  EXPECT_NE(v.find("c"), nullptr);
  EXPECT_EQ(v.find_non_null("c"), nullptr);
  EXPECT_TRUE(v.find("d")->as_bool(false));
  EXPECT_FALSE(v.find("e")->find("f")->as_bool(true));
}

TEST(ObsJsonParser, RejectsMalformedInput) {
  for (const char* bad : {"{", "[1,", "\"unterminated", "nul", "{\"a\":1,}", "1 2",
                          "{\"a\" 1}", "1e999"}) {
    auto v = obs::json::parse(bad);
    EXPECT_FALSE(v.has_value()) << bad;
    EXPECT_EQ(v.diagnostics().category, ErrorCategory::kParse) << bad;
  }
}

TEST(ObsJsonParser, MissingFileIsIoError) {
  auto v = obs::json::parse_file(temp_path("does_not_exist.json"));
  ASSERT_FALSE(v.has_value());
  EXPECT_EQ(v.diagnostics().category, ErrorCategory::kIo);
}

TEST(ObsJsonParser, EscapeRoundTripsThroughParse) {
  const std::string original = "tab\t\"quote\"\nnewline\\slash";
  const obs::json::Value v = parse_ok(obs::json::escape(original));
  EXPECT_EQ(v.as_string(), original);
}

// --- robust statistics and the overhead clamp ------------------------------

TEST(ObsRobustStats, MedianMadMinMean) {
  const obs::RobustStats s = obs::robust_stats({5.0, 1.0, 3.0, 100.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.2);
  // Deviations from 3: {2, 2, 0, 97, 1} -> median 2. The outlier moves
  // the mean by 20x but the MAD barely notices it.
  EXPECT_DOUBLE_EQ(s.mad, 2.0);
  EXPECT_DOUBLE_EQ(obs::median_of({2.0, 1.0, 4.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(obs::robust_stats({}).median, 0.0);
}

TEST(ObsOverheadEstimate, NegativeDeltaInsideNoiseClampsToZero) {
  const obs::RobustStats off = obs::robust_stats({1.0, 1.02, 0.98});
  const obs::RobustStats on = obs::robust_stats({0.99, 1.0, 0.98});
  const obs::OverheadEstimate e = obs::estimate_overhead(off, on);
  EXPECT_LT(e.raw_percent, 0.0);  // measured "speedup"
  EXPECT_TRUE(e.below_noise_floor);
  EXPECT_DOUBLE_EQ(e.percent, 0.0);  // never report negative overhead
}

TEST(ObsOverheadEstimate, RealOverheadSurvivesTheClamp) {
  const obs::RobustStats off = obs::robust_stats({1.0, 1.02, 0.98});
  const obs::RobustStats on = obs::robust_stats({1.2, 1.21, 1.19});
  const obs::OverheadEstimate e = obs::estimate_overhead(off, on);
  EXPECT_NEAR(e.percent, 20.0, 1.0);
  EXPECT_FALSE(e.below_noise_floor);
}

// --- bench history parsing -------------------------------------------------

TEST(ObsBenchHistory, ParsesHarnessRecord) {
  const obs::json::Value line = parse_ok(history_line(
      "micro_x/case", 2.0, 0.1, {{"iterations", 120.0}, {"warm_hit_rate", 1.0}}));
  auto rec = obs::parse_bench_record(line);
  ASSERT_TRUE(rec.has_value()) << rec.status().describe();
  EXPECT_EQ(rec.value().key, "micro_x/case");
  EXPECT_EQ(rec.value().unit, "seconds");
  EXPECT_DOUBLE_EQ(rec.value().median, 2.0);
  EXPECT_EQ(rec.value().values.size(), 3u);
  ASSERT_NE(rec.value().metric("iterations"), nullptr);
  EXPECT_DOUBLE_EQ(*rec.value().metric("iterations"), 120.0);
  EXPECT_EQ(rec.value().metric("absent"), nullptr);
  EXPECT_EQ(rec.value().git_describe, "test");
  EXPECT_TRUE(rec.value().obs_enabled);
}

TEST(ObsBenchHistory, RejectsWrongSchemaAndMissingMedian) {
  auto wrong = obs::parse_bench_record(parse_ok(R"({"schema":"v0","bench":"b"})"));
  ASSERT_FALSE(wrong.has_value());
  EXPECT_EQ(wrong.diagnostics().category, ErrorCategory::kParse);
  auto missing = obs::parse_bench_record(parse_ok(
      R"({"schema":"lrd-bench-v1","bench":"b","key":"k","unit":"s"})"));
  ASSERT_FALSE(missing.has_value());
}

TEST(ObsBenchHistory, LoadReportsBadLineNumber) {
  const std::string path = temp_path("bad_history.jsonl");
  write_file(path, history_line("k", 1.0, 0.1) + "\n\nnot json\n");
  auto history = obs::load_bench_history(path);
  ASSERT_FALSE(history.has_value());
  EXPECT_EQ(history.diagnostics().category, ErrorCategory::kParse);
  EXPECT_EQ(history.diagnostics().line, 3);
}

// --- regression detector: the golden fixtures ------------------------------

TEST(ObsRegress, InjectedSlowdownMustFlag) {
  // Four healthy runs, then a 3x slowdown appended as the newest record.
  std::string text;
  for (double m : {1.0, 1.01, 0.99, 1.0}) text += history_line("bench/slow", m, 0.02) + "\n";
  text += history_line("bench/slow", 3.0, 0.02) + "\n";
  const std::string path = temp_path("slowdown.jsonl");
  write_file(path, text);

  auto history = obs::load_bench_history(path);
  ASSERT_TRUE(history.has_value()) << history.status().describe();
  const obs::RegressionReport report =
      obs::check_regressions(std::move(history).take(), {}, obs::RegressionConfig{});
  EXPECT_EQ(report.keys_checked, 1u);
  ASSERT_EQ(report.regressions, 1u);
  ASSERT_FALSE(report.findings.empty());
  const obs::RegressionFinding& f = report.findings.front();
  EXPECT_TRUE(f.regression);
  EXPECT_EQ(f.metric, "");  // wall time, not a telemetry metric
  EXPECT_NEAR(f.relative(), 2.0, 0.1);
  EXPECT_NE(report.to_text().find("[REGR]"), std::string::npos);
}

TEST(ObsRegress, WithinJitterWobbleStaysQuiet) {
  // The candidate is +3% on a bench whose own repeats jitter by +-5%:
  // inside both the relative threshold and the MAD band.
  std::string text;
  for (double m : {1.0, 1.04, 0.97, 1.01}) text += history_line("bench/wobble", m, 0.05) + "\n";
  text += history_line("bench/wobble", 1.03, 0.05) + "\n";
  const std::string path = temp_path("wobble.jsonl");
  write_file(path, text);

  auto history = obs::load_bench_history(path);
  ASSERT_TRUE(history.has_value());
  const obs::RegressionReport report =
      obs::check_regressions(std::move(history).take(), {}, obs::RegressionConfig{});
  EXPECT_EQ(report.keys_checked, 1u);
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_FALSE(report.any_regression());
}

TEST(ObsRegress, IterationCountRegressionFlagsWithoutWallTimeChange) {
  // Wall time identical; the solver suddenly needs twice the iterations.
  std::string text;
  for (double its : {100.0, 101.0, 99.0, 100.0})
    text += history_line("bench/solve", 1.0, 0.02, {{"iterations", its}}) + "\n";
  text += history_line("bench/solve", 1.0, 0.02, {{"iterations", 200.0}}) + "\n";
  const std::string path = temp_path("iterations.jsonl");
  write_file(path, text);

  auto history = obs::load_bench_history(path);
  ASSERT_TRUE(history.has_value());
  const obs::RegressionReport report =
      obs::check_regressions(std::move(history).take(), {}, obs::RegressionConfig{});
  ASSERT_EQ(report.regressions, 1u);
  bool found = false;
  for (const obs::RegressionFinding& f : report.findings) {
    if (f.metric == "iterations") {
      EXPECT_TRUE(f.regression);
      found = true;
    } else {
      EXPECT_FALSE(f.regression) << f.metric;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsRegress, TwoFileModeAndNewKeys) {
  // CI workflow: --history baseline vs --candidate fresh records. A key
  // with no baseline is reported but never gated.
  std::vector<obs::BenchHistoryRecord> history, candidates;
  for (double m : {1.0, 1.02, 0.98}) {
    auto rec = obs::parse_bench_record(parse_ok(history_line("bench/known", m, 0.02)));
    ASSERT_TRUE(rec.has_value());
    history.push_back(std::move(rec).take());
  }
  auto fresh = obs::parse_bench_record(parse_ok(history_line("bench/known", 1.01, 0.02)));
  auto novel = obs::parse_bench_record(parse_ok(history_line("bench/new", 5.0, 0.1)));
  ASSERT_TRUE(fresh.has_value() && novel.has_value());
  candidates.push_back(std::move(fresh).take());
  candidates.push_back(std::move(novel).take());

  const obs::RegressionReport report = obs::check_regressions(
      std::move(history), std::move(candidates), obs::RegressionConfig{});
  EXPECT_EQ(report.keys_checked, 1u);
  EXPECT_EQ(report.regressions, 0u);
  ASSERT_EQ(report.keys_without_baseline.size(), 1u);
  EXPECT_EQ(report.keys_without_baseline.front(), "bench/new");
  EXPECT_NE(report.to_json().find("\"kind\": \"bench-check\""), std::string::npos);
}

TEST(ObsRegress, ConfigValidation) {
  obs::RegressionConfig cfg;
  EXPECT_TRUE(cfg.validate().is_ok());
  cfg.baseline_window = 0;
  EXPECT_FALSE(cfg.validate().is_ok());
  cfg = obs::RegressionConfig{};
  cfg.mad_k = -1.0;
  EXPECT_FALSE(cfg.validate().is_ok());
}

// --- trace profile ---------------------------------------------------------

constexpr const char* kTrace = R"({
  "displayTimeUnit": "ms",
  "droppedEvents": 2,
  "traceEvents": [
    {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"worker-0"}},
    {"name":"root","cat":"sweep","ph":"X","pid":1,"tid":1,"ts":0,"dur":100},
    {"name":"child","cat":"solver","ph":"X","pid":1,"tid":1,"ts":10,"dur":30},
    {"name":"child","cat":"solver","ph":"X","pid":1,"tid":1,"ts":50,"dur":25},
    {"name":"other","cat":"solver","ph":"X","pid":1,"tid":2,"ts":20,"dur":40},
    {"name":"mark","ph":"i","pid":1,"tid":1,"ts":15,"s":"t"}
  ]
})";

TEST(ObsTraceProfile, SelfTimeExcludesDirectChildren) {
  auto profile = obs::profile_trace(parse_ok(kTrace), 3, 20);
  ASSERT_TRUE(profile.has_value()) << profile.status().describe();
  const obs::TraceProfile& p = profile.value();
  EXPECT_EQ(p.spans, 4u);
  EXPECT_EQ(p.instants, 1u);
  EXPECT_EQ(p.dropped, 2u);
  EXPECT_DOUBLE_EQ(p.span_us, 100.0);

  ASSERT_FALSE(p.by_name.empty());
  // child: 30 + 25 = 55 self; root: 100 - 55 = 45 self; other: 40.
  EXPECT_EQ(p.by_name[0].name, "child");
  EXPECT_DOUBLE_EQ(p.by_name[0].self_us, 55.0);
  double root_self = -1.0;
  for (const obs::ProfileEntry& e : p.by_name)
    if (e.name == "root") root_self = e.self_us;
  EXPECT_DOUBLE_EQ(root_self, 45.0);

  // Categories sorted by total: sweep 100 > solver 95.
  ASSERT_EQ(p.by_category.size(), 2u);
  EXPECT_EQ(p.by_category[0].name, "sweep");
  EXPECT_DOUBLE_EQ(p.by_category[0].total_us, 100.0);
  EXPECT_DOUBLE_EQ(p.by_category[1].total_us, 95.0);
  EXPECT_DOUBLE_EQ(p.by_category[1].self_us, 95.0);

  ASSERT_EQ(p.top_spans.size(), 3u);
  EXPECT_EQ(p.top_spans[0].name, "root");
  EXPECT_DOUBLE_EQ(p.top_spans[0].dur_us, 100.0);
}

TEST(ObsTraceProfile, WorkerUtilizationAndNames) {
  auto profile = obs::profile_trace(parse_ok(kTrace), 3, 20);
  ASSERT_TRUE(profile.has_value());
  const obs::TraceProfile& p = profile.value();
  ASSERT_EQ(p.workers.size(), 2u);
  EXPECT_EQ(p.workers[0].tid, 1);
  EXPECT_EQ(p.workers[0].name, "worker-0");
  // tid 1's only top-level span covers the whole profile; children do
  // not double-count into busy time.
  EXPECT_DOUBLE_EQ(p.workers[0].busy_us, 100.0);
  EXPECT_DOUBLE_EQ(p.workers[0].utilization, 1.0);
  EXPECT_EQ(p.workers[0].timeline.size(), 20u);
  EXPECT_EQ(p.workers[1].tid, 2);
  EXPECT_NEAR(p.workers[1].utilization, 0.4, 1e-9);

  ASSERT_EQ(p.instant_counts.size(), 1u);
  EXPECT_EQ(p.instant_counts[0].first, "mark");

  const std::string text = p.to_text();
  EXPECT_NE(text.find("worker-0"), std::string::npos);
  EXPECT_NE(text.find("child"), std::string::npos);
  EXPECT_NE(p.to_json().find("\"kind\": \"profile\""), std::string::npos);
}

TEST(ObsTraceProfile, RejectsNonTraceDocument) {
  auto profile = obs::profile_trace(parse_ok(R"({"foo": 1})"));
  ASSERT_FALSE(profile.has_value());
  EXPECT_EQ(profile.diagnostics().category, ErrorCategory::kParse);
}

// --- manifest diff ---------------------------------------------------------

constexpr const char* kManifestA = R"({
  "tool":"lrdq_sweep","title":"A","wall_seconds":10.0,
  "cells":{"total":2,"computed":2,"cache_hits":0,"resumed":0},
  "cache":{"hits":0,"misses":4,"stores":4,"loaded":0},
  "issues":["solver stalled"],
  "cell_times":[
    {"row":0,"col":0,"seconds":4.0,"source":"computed",
     "telemetry":{"total_seconds":4.0,"levels":[
       {"bins":128,"iterations":100,"bracket_lower":0,"bracket_upper":1,
        "bracket_width":1,"occupancy_gap":0.1,"mass_drift":1e-9,"wall_seconds":4.0}]}},
    {"row":0,"col":1,"seconds":6.0,"source":"computed"}
  ]
})";

constexpr const char* kManifestB = R"({
  "tool":"lrdq_sweep","title":"B","wall_seconds":8.0,
  "cells":{"total":2,"computed":1,"cache_hits":1,"resumed":0},
  "cache":{"hits":2,"misses":2,"stores":2,"loaded":2},
  "issues":[],
  "cell_times":[
    {"row":0,"col":0,"seconds":3.0,"source":"computed",
     "telemetry":{"total_seconds":3.0,"levels":[
       {"bins":128,"iterations":120,"bracket_lower":0,"bracket_upper":1,
        "bracket_width":1,"occupancy_gap":0.2,"mass_drift":1e-8,"wall_seconds":3.0}]}},
    {"row":1,"col":0,"seconds":5.0,"source":"computed"}
  ]
})";

TEST(ObsManifestDiff, CellMatchingCacheRateAndTelemetry) {
  auto diff = obs::diff_manifests(parse_ok(kManifestA), parse_ok(kManifestB));
  ASSERT_TRUE(diff.has_value()) << diff.status().describe();
  const obs::ManifestDiff& d = diff.value();
  EXPECT_DOUBLE_EQ(d.wall_seconds.a, 10.0);
  EXPECT_DOUBLE_EQ(d.wall_seconds.delta(), -2.0);
  EXPECT_DOUBLE_EQ(d.cache_hit_rate.a, 0.0);
  EXPECT_DOUBLE_EQ(d.cache_hit_rate.b, 0.5);
  EXPECT_EQ(d.common_cells, 1u);
  EXPECT_EQ(d.only_a, 1u);
  EXPECT_EQ(d.only_b, 1u);
  ASSERT_EQ(d.cell_deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(d.cell_deltas[0].delta(), -1.0);
  EXPECT_TRUE(d.has_telemetry);
  EXPECT_DOUBLE_EQ(d.iterations.a, 100.0);
  EXPECT_DOUBLE_EQ(d.iterations.b, 120.0);
  EXPECT_DOUBLE_EQ(d.max_mass_drift.b, 1e-8);
  EXPECT_DOUBLE_EQ(d.issues.a, 1.0);
  EXPECT_DOUBLE_EQ(d.issues.b, 0.0);

  const std::string text = d.to_text();
  EXPECT_NE(text.find("cache hit rate"), std::string::npos);
  EXPECT_NE(d.to_json().find("\"kind\": \"diff-manifest\""), std::string::npos);
}

TEST(ObsManifestDiff, RejectsNonManifest) {
  auto diff = obs::diff_manifests(parse_ok(R"({"foo":1})"), parse_ok(kManifestB));
  ASSERT_FALSE(diff.has_value());
  EXPECT_EQ(diff.diagnostics().category, ErrorCategory::kParse);
}

// --- metrics diff ----------------------------------------------------------

TEST(ObsMetricsDiff, FlattensHistogramsAndTracksMissingSides) {
  const obs::json::Value a = parse_ok(
      R"({"c":{"help":"","type":"counter","value":5},
          "h":{"help":"","type":"histogram","count":3,"sum":6.0,"p50":2.0,"p90":3.0,"p99":3.0}})");
  const obs::json::Value b = parse_ok(
      R"({"c":{"help":"","type":"counter","value":8},
          "g":{"help":"","type":"gauge","value":1.5}})");
  auto diff = obs::diff_metrics(a, b);
  ASSERT_TRUE(diff.has_value());
  const obs::MetricsDiff& d = diff.value();
  EXPECT_EQ(d.only_a, 1u);  // the histogram vanished
  EXPECT_EQ(d.only_b, 1u);  // the gauge appeared

  double c_delta = 0.0;
  bool saw_p90 = false, saw_gauge = false;
  for (const obs::MetricDelta& m : d.metrics) {
    if (m.name == "c") c_delta = m.delta();
    if (m.name == "h.p90") {
      saw_p90 = true;
      EXPECT_TRUE(m.in_a);
      EXPECT_FALSE(m.in_b);
    }
    if (m.name == "g") {
      saw_gauge = true;
      EXPECT_FALSE(m.in_a);
      EXPECT_TRUE(m.in_b);
    }
  }
  EXPECT_DOUBLE_EQ(c_delta, 3.0);
  EXPECT_TRUE(saw_p90);
  EXPECT_TRUE(saw_gauge);
  EXPECT_NE(d.to_json().find("\"kind\": \"diff-metrics\""), std::string::npos);
}

TEST(ObsMetricsDiff, RegistrySnapshotDiffedAgainstItselfIsAllZero) {
  // Integration: the real registry's JSON export parses with the real
  // parser and self-diffs to zero.
  obs::Registry registry;
  registry.counter("test_counter", "help").inc(3);
  registry.histogram("test_hist_seconds", "help").observe(0.5);
  const obs::json::Value snapshot = parse_ok(registry.to_json());
  auto diff = obs::diff_metrics(snapshot, snapshot);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(diff.value().only_a, 0u);
  EXPECT_EQ(diff.value().only_b, 0u);
  for (const obs::MetricDelta& m : diff.value().metrics) {
    EXPECT_TRUE(m.in_a && m.in_b) << m.name;
    EXPECT_DOUBLE_EQ(m.delta(), 0.0) << m.name;
  }
}

}  // namespace
