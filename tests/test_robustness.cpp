// Failure-path tests: the error taxonomy (Status / Expected / Diagnostics),
// validated configs, hardened trace ingestion, and the solver's
// numerical-health guardrails. Every pathological input here must come back
// as a structured diagnostic — never a crash, a hang, or NaN bounds.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/model.hpp"
#include "core/status.hpp"
#include "dist/simple_epochs.hpp"
#include "dist/truncated_pareto.hpp"
#include "queueing/fluid_queue_sim.hpp"
#include "queueing/solver.hpp"
#include "queueing/trace_queue_sim.hpp"
#include "runtime/executor.hpp"
#include "runtime/manifest.hpp"
#include "traffic/trace.hpp"

namespace {

using namespace lrd;
using dist::Marginal;
using queueing::FluidQueueSolver;
using queueing::SolverConfig;
using queueing::SolverStop;
using traffic::RateTrace;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// Status / Expected / Diagnostics core.

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(st.category(), ErrorCategory::kNone);
  EXPECT_EQ(st.describe(), "ok");
}

TEST(Status, FailureCarriesDiagnostics) {
  auto d = make_diagnostics(ErrorCategory::kNumericalGuard, "test.component",
                            "mass is conserved", "mass = 0.5");
  d.iteration = 17;
  d.level = 2;
  const Status st = Status::failure(d);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.category(), ErrorCategory::kNumericalGuard);
  const std::string text = st.describe();
  EXPECT_NE(text.find("numerical-guard"), std::string::npos);
  EXPECT_NE(text.find("test.component"), std::string::npos);
  EXPECT_NE(text.find("mass is conserved"), std::string::npos);
  EXPECT_NE(text.find("iteration 17"), std::string::npos);
  EXPECT_NE(text.find("level 2"), std::string::npos);
}

TEST(Status, DescribeIncludesLineNumber) {
  auto d = make_diagnostics(ErrorCategory::kParse, "traffic.trace", "rates are numbers",
                            "unparsable rate 'x'");
  d.line = 42;
  EXPECT_NE(Status::failure(d).describe().find("line 42"), std::string::npos);
}

TEST(Expected, ValueAndErrorPaths) {
  Expected<int> good(7);
  ASSERT_TRUE(good.has_value());
  EXPECT_TRUE(static_cast<bool>(good));
  EXPECT_EQ(good.value(), 7);
  EXPECT_TRUE(good.status().is_ok());

  Expected<int> bad(make_diagnostics(ErrorCategory::kIo, "test", "file opens", "nope"));
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().category(), ErrorCategory::kIo);
  EXPECT_THROW(bad.value(), std::logic_error);
  EXPECT_EQ(Expected<int>(3).take(), 3);
}

TEST(ExitCodes, TaxonomyMapsToDistinctCodes) {
  EXPECT_EQ(exit_code_for(ErrorCategory::kNone), 0);
  EXPECT_EQ(exit_code_for(ErrorCategory::kInvalidArgument), 3);
  EXPECT_EQ(exit_code_for(ErrorCategory::kInvalidConfig), 3);
  EXPECT_EQ(exit_code_for(ErrorCategory::kParse), 4);
  EXPECT_EQ(exit_code_for(ErrorCategory::kIo), 5);
  EXPECT_EQ(exit_code_for(ErrorCategory::kNumericalGuard), 6);
  EXPECT_EQ(exit_code_for(ErrorCategory::kResourceExhausted), 6);
  EXPECT_EQ(exit_code_for(ErrorCategory::kInternal), 6);
}

TEST(Exceptions, CarryDiagnosticsAndKeepLegacyBases) {
  const auto d =
      make_diagnostics(ErrorCategory::kInvalidConfig, "c", "x > 0", "x = -1");
  try {
    throw_error(d);
    FAIL() << "throw_error returned";
  } catch (const std::invalid_argument& e) {  // ConfigError is-a invalid_argument
    const Diagnostics* got = diagnostics_of(e);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->category, ErrorCategory::kInvalidConfig);
    EXPECT_EQ(got->invariant, "x > 0");
  }
  try {
    throw_error(make_diagnostics(ErrorCategory::kParse, "c", "i", "m"));
    FAIL() << "throw_error returned";
  } catch (const std::runtime_error& e) {  // DataError is-a runtime_error
    ASSERT_NE(diagnostics_of(e), nullptr);
    EXPECT_EQ(diagnostics_of(e)->category, ErrorCategory::kParse);
  }
  const std::logic_error plain("no diagnostics here");
  EXPECT_EQ(diagnostics_of(plain), nullptr);
}

// ---------------------------------------------------------------------------
// Validated configs.

TEST(Validation, SolverConfigReportsPreciseField) {
  SolverConfig c;
  c.initial_bins = 1;
  auto st = c.validate();
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.category(), ErrorCategory::kInvalidConfig);
  EXPECT_NE(st.describe().find("initial_bins"), std::string::npos);

  c = SolverConfig{};
  c.mass_tolerance = -1.0;
  EXPECT_FALSE(c.validate().is_ok());
  c = SolverConfig{};
  c.target_relative_gap = kNan;
  EXPECT_FALSE(c.validate().is_ok());
  c = SolverConfig{};
  EXPECT_TRUE(c.validate().is_ok());
}

TEST(Validation, ModelConfigRejectsBadHurstAndUtilization) {
  core::ModelConfig cfg;
  cfg.hurst = 0.5;
  EXPECT_FALSE(cfg.validate().is_ok());
  cfg = core::ModelConfig{};
  cfg.utilization = 1.0;
  EXPECT_FALSE(cfg.validate().is_ok());
  cfg = core::ModelConfig{};
  EXPECT_TRUE(cfg.validate().is_ok());
  cfg.utilization = 1.2;
  Marginal m({2.0, 6.0}, {0.5, 0.5});
  try {
    core::FluidModel model(m, cfg);
    FAIL() << "FluidModel accepted utilization = 1.2";
  } catch (const ConfigError& e) {
    ASSERT_NE(diagnostics_of(e), nullptr);
    EXPECT_NE(std::string(e.what()).find("utilization"), std::string::npos);
  }
}

TEST(Validation, DistributionParamsCarryDiagnostics) {
  try {
    dist::TruncatedPareto bad(0.01, 1.0, 10.0);  // alpha must be > 1
    FAIL() << "TruncatedPareto accepted alpha = 1";
  } catch (const ConfigError& e) {
    ASSERT_NE(diagnostics_of(e), nullptr);
    EXPECT_EQ(diagnostics_of(e)->category, ErrorCategory::kInvalidArgument);
    EXPECT_NE(std::string(e.what()).find("alpha"), std::string::npos);
  }
  EXPECT_THROW(dist::TruncatedPareto(kNan, 1.3, 10.0), std::invalid_argument);
}

TEST(Validation, SimulatorConfigs) {
  Marginal m({1.0}, {1.0});
  dist::ExponentialEpoch d(1.0);
  queueing::FluidSimConfig bad;
  bad.batches = 1;
  EXPECT_THROW(queueing::simulate_fluid_queue(m, d, 2.0, 1.0, bad), ConfigError);
  EXPECT_FALSE(bad.validate().is_ok());
  EXPECT_THROW(queueing::simulate_fluid_queue(m, d, kNan, 1.0), ConfigError);
  RateTrace trace({1.0, 2.0, 1.0}, 0.1);
  EXPECT_THROW(queueing::simulate_trace_queue(trace, kNan, 1.0), ConfigError);
  EXPECT_THROW(queueing::simulate_trace_queue_normalized(trace, 1.5, 1.0), ConfigError);
}

// ---------------------------------------------------------------------------
// Hardened trace ingestion.

Expected<RateTrace> parse(const std::string& text) {
  std::istringstream is(text);
  return RateTrace::try_load(is);
}

TEST(TraceParse, RejectsMalformedHeaderWithLineNumber) {
  auto r = parse("not a header at all extra tokens\n");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().category(), ErrorCategory::kParse);
  EXPECT_EQ(r.diagnostics().line, 1);

  EXPECT_FALSE(parse("").has_value());
  EXPECT_FALSE(parse("0 3\n1\n2\n3\n").has_value());        // bin length <= 0
  EXPECT_FALSE(parse("0.01 2.5\n1\n2\n").has_value());      // non-integer count
  EXPECT_FALSE(parse("0.01 99999999999999\n").has_value()); // absurd count, no bad_alloc
}

TEST(TraceParse, RejectsBadRatesWithLineNumber) {
  auto r = parse("0.01 3\n1.0\nbogus\n2.0\n");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().category(), ErrorCategory::kParse);
  EXPECT_EQ(r.diagnostics().line, 3);
  EXPECT_NE(r.diagnostics().message.find("bogus"), std::string::npos);

  r = parse("0.01 3\n1.0\nnan\n2.0\n");
  ASSERT_FALSE(r.has_value());
  EXPECT_NE(r.diagnostics().message.find("non-finite"), std::string::npos);

  r = parse("0.01 3\n1.0\n-2.0\n2.0\n");
  ASSERT_FALSE(r.has_value());
  EXPECT_NE(r.diagnostics().message.find("negative"), std::string::npos);
  EXPECT_EQ(r.diagnostics().line, 3);
}

TEST(TraceParse, ReportsTruncationPrecisely) {
  auto r = parse("0.01 5\n1.0\n2.0\n");
  ASSERT_FALSE(r.has_value());
  EXPECT_NE(r.diagnostics().message.find("got 2 of 5"), std::string::npos);
}

TEST(TraceParse, GoodTraceRoundTrips) {
  auto r = parse("0.01 3\n1.0 2.0\n3.0\n");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r.value().size(), 3u);
  EXPECT_DOUBLE_EQ(r.value()[2], 3.0);
}

TEST(TraceParse, ThrowingWrapperIsDataError) {
  std::istringstream is("0.01 5\n1.0\n");
  EXPECT_THROW(RateTrace::load(is), DataError);
  std::istringstream is2("0.01 5\n1.0\n");
  EXPECT_THROW(RateTrace::load(is2), std::runtime_error);  // legacy base preserved
}

TEST(TraceParse, MissingFileIsIoCategory) {
  auto r = RateTrace::try_load_file("/nonexistent/definitely/missing.txt");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().category(), ErrorCategory::kIo);
}

TEST(TraceParse, CtorRejectsNegativeAndNonFiniteRates) {
  EXPECT_THROW(RateTrace({1.0, -0.5}, 0.1), ConfigError);
  EXPECT_THROW(RateTrace({1.0, kNan}, 0.1), std::invalid_argument);
  EXPECT_THROW(RateTrace({1.0}, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Solver guardrails and structured exit paths.

FluidQueueSolver make_solver(double service_rate = 2.0, double buffer = 1.0) {
  Marginal m({0.0, 3.0}, {2.0 / 3.0, 1.0 / 3.0});
  auto d = std::make_shared<const dist::DeterministicEpoch>(1.0);
  return FluidQueueSolver(m, d, service_rate, buffer);
}

TEST(SolverGuards, OverloadedQueueSolvesWithFiniteBracket) {
  // utilization > 1 is NOT pathological for a finite buffer: the chain is
  // stable and the loss is simply heavy. The solver must converge with an
  // ok status (no spurious guard noise), never NaN.
  const auto solver = make_solver(0.9, 1.0);  // mean 1, peak 3, c = 0.9
  const auto r = solver.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.status.is_ok());
  EXPECT_TRUE(r.has_valid_bounds());
  EXPECT_TRUE(std::isfinite(r.loss.lower));
  EXPECT_TRUE(std::isfinite(r.loss.upper));
  EXPECT_GT(r.loss_estimate(), 0.0);
  // The structured utilization >= 1 rejection lives at the model layer,
  // where rho in (0, 1) is what defines the service rate.
  core::ModelConfig cfg;
  cfg.utilization = 1.1;
  EXPECT_THROW(core::FluidModel(Marginal({2.0, 6.0}, {0.5, 0.5}), cfg), ConfigError);
}

TEST(SolverGuards, LeakingIncrementPmfTripsMassGuard) {
  const auto solver = make_solver();
  SolverConfig cfg;
  cfg.initial_bins = 64;
  cfg.max_bins = 64;
  // Exact kernels, then bleed 5% of the mass out of both: every fold step
  // now destroys mass, which sanitize() would silently renormalize away if
  // the guard measured after clamping.
  auto lo = solver.increment_pmf_lower(cfg.initial_bins);
  auto hi = solver.increment_pmf_upper(cfg.initial_bins);
  for (double& p : lo) p *= 0.95;
  for (double& p : hi) p *= 0.95;
  const auto r = solver.solve_with_increments(cfg, lo, hi);

  EXPECT_EQ(r.stop, SolverStop::kGuardTripped);
  EXPECT_FALSE(r.converged);
  ASSERT_FALSE(r.status.is_ok());
  EXPECT_EQ(r.status.category(), ErrorCategory::kNumericalGuard);
  const auto& d = r.status.diagnostics();
  EXPECT_NE(d.invariant.find("mass"), std::string::npos);
  EXPECT_NE(d.iteration, Diagnostics::npos);  // context: where it tripped
  EXPECT_EQ(d.last_healthy_level, r.last_healthy_level);
  // The leak poisons the very first level, so no healthy state exists and
  // the solver falls back to the vacuous-but-valid bracket.
  EXPECT_EQ(r.last_healthy_level, 0u);
  EXPECT_DOUBLE_EQ(r.loss.lower, 0.0);
  EXPECT_DOUBLE_EQ(r.loss.upper, 1.0);
  EXPECT_TRUE(r.has_valid_bounds());
  // Populated on every exit path.
  EXPECT_GT(r.final_bins, 0u);
  EXPECT_GE(r.levels, 1u);
}

TEST(SolverGuards, NonFiniteKernelIsCaughtUpFront) {
  const auto solver = make_solver();
  SolverConfig cfg;
  cfg.initial_bins = 64;
  auto lo = solver.increment_pmf_lower(cfg.initial_bins);
  auto hi = solver.increment_pmf_upper(cfg.initial_bins);
  lo[lo.size() / 2] = kNan;
  // The convolver's finiteness check fires as a DataError (kNumericalGuard).
  try {
    (void)solver.solve_with_increments(cfg, lo, hi);
    FAIL() << "NaN kernel was accepted";
  } catch (const DataError& e) {
    ASSERT_NE(diagnostics_of(e), nullptr);
    EXPECT_EQ(diagnostics_of(e)->category, ErrorCategory::kNumericalGuard);
  }
}

TEST(SolverGuards, BudgetExhaustionKeepsValidWideBracket) {
  // Demand an absurdly tight gap with no room to refine: the solver must
  // surface kResourceExhausted and still hand back a finite bracket.
  Marginal m({2.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  auto d = std::make_shared<const dist::TruncatedPareto>(0.015, 1.3, 10.0);
  FluidQueueSolver solver(m, d, 7.5, 2.0);
  SolverConfig cfg;
  cfg.initial_bins = 32;
  cfg.max_bins = 64;
  cfg.target_relative_gap = 1e-9;
  cfg.max_total_iterations = 2000;
  const auto r = solver.solve(cfg);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.stop == SolverStop::kIterationBudget || r.stop == SolverStop::kBinBudget);
  ASSERT_FALSE(r.status.is_ok());
  EXPECT_EQ(r.status.category(), ErrorCategory::kResourceExhausted);
  EXPECT_TRUE(r.has_valid_bounds());
  EXPECT_TRUE(std::isfinite(r.loss.lower));
  EXPECT_TRUE(std::isfinite(r.loss.upper));
  EXPECT_LE(r.loss.lower, r.loss.upper);
  EXPECT_GT(r.final_bins, 0u);
  EXPECT_GE(r.levels, 1u);
  EXPECT_GE(r.last_healthy_level, 1u);
}

TEST(SolverGuards, HealthyPathStaysClean) {
  // A benign solve must report kConverged / kZeroLoss with an ok status —
  // the guardrails may not perturb the paper-faithful path.
  const auto solver = make_solver();
  const auto r = solver.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.status.is_ok());
  EXPECT_TRUE(r.stop == SolverStop::kConverged || r.stop == SolverStop::kZeroLoss);
  EXPECT_GE(r.last_healthy_level, 1u);
}

TEST(SolverGuards, SolveWithIncrementsValidatesShape) {
  const auto solver = make_solver();
  SolverConfig cfg;
  cfg.initial_bins = 64;
  EXPECT_THROW(solver.solve_with_increments(cfg, {0.5, 0.5}, {0.5, 0.5}), ConfigError);
}

// ---------------------------------------------------------------------------
// Deadline-bounded solves.

/// A cell that cannot converge in any reasonable time: heavy-tailed
/// epochs plus an absurdly tight gap. Same shape as the budget test
/// above, but with the iteration budget opened wide so only the
/// wall-clock deadline (or cancellation) can stop the solve.
FluidQueueSolver make_pathological_solver() {
  Marginal m({2.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  auto d = std::make_shared<const dist::TruncatedPareto>(0.015, 1.3, 10.0);
  return FluidQueueSolver(m, d, 7.5, 2.0);
}

SolverConfig unbounded_pathological_config() {
  SolverConfig cfg;
  cfg.initial_bins = 32;
  cfg.max_bins = 1 << 20;
  cfg.target_relative_gap = 1e-12;
  cfg.max_total_iterations = 1000000000;
  return cfg;
}

TEST(SolverDeadline, ExpiryReturnsWideValidBracketNeverAHang) {
  const auto solver = make_pathological_solver();
  auto cfg = unbounded_pathological_config();
  cfg.deadline_ms = 20;
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = solver.solve(cfg);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  EXPECT_EQ(r.stop, SolverStop::kDeadlineExceeded);
  EXPECT_FALSE(r.converged);
  ASSERT_FALSE(r.status.is_ok());
  EXPECT_EQ(r.status.category(), ErrorCategory::kResourceExhausted);
  EXPECT_NE(r.status.diagnostics().message.find("deadline_exceeded"), std::string::npos);
  // The bracket reported is the one evaluated at the last check-block
  // boundary: wide, but valid (Prop. II.1 holds at any n), never NaN.
  EXPECT_TRUE(r.has_valid_bounds());
  EXPECT_TRUE(std::isfinite(r.loss.lower));
  EXPECT_TRUE(std::isfinite(r.loss.upper));
  EXPECT_LE(r.loss.lower, r.loss.upper);
  EXPECT_GT(r.final_bins, 0u);
  // Deadline overshoot is bounded by one check block — generous slack
  // here for loaded CI, but nowhere near the unbounded-solve regime.
  EXPECT_LT(elapsed_s, 30.0);
}

TEST(SolverDeadline, CancellationTokenStopsAtNextCheck) {
  const auto solver = make_pathological_solver();
  auto cfg = unbounded_pathological_config();
  runtime::CancellationToken token;
  token.cancel();  // pre-cancelled: first check-block boundary must exit
  cfg.cancellation = &token;
  const auto r = solver.solve(cfg);
  EXPECT_EQ(r.stop, SolverStop::kCancelled);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status.category(), ErrorCategory::kResourceExhausted);
  EXPECT_NE(r.status.diagnostics().message.find("cancelled"), std::string::npos);
  EXPECT_TRUE(r.has_valid_bounds());
  EXPECT_LE(r.loss.lower, r.loss.upper);
}

TEST(SolverDeadline, GenerousDeadlineDoesNotPerturbHealthySolves) {
  const auto solver = make_solver();
  const auto clean = solver.solve();
  SolverConfig cfg;
  cfg.deadline_ms = 600000;  // ten minutes: unreachable for this solve
  const auto bounded = solver.solve(cfg);
  EXPECT_TRUE(bounded.converged);
  EXPECT_EQ(bounded.loss.lower, clean.loss.lower);
  EXPECT_EQ(bounded.loss.upper, clean.loss.upper);
  EXPECT_EQ(bounded.iterations, clean.iterations);
}

// ---------------------------------------------------------------------------
// Sweep graceful degradation.

TEST(SweepRobustness, InvalidSweepConfigThrowsBeforeAnyCell) {
  Marginal m({2.0, 6.0}, {0.5, 0.5});
  core::ModelSweepConfig cfg;
  cfg.utilization = 1.5;
  EXPECT_THROW(core::loss_vs_buffer_and_cutoff(m, cfg, {0.1}, {1.0}), ConfigError);
}

TEST(SweepRobustness, BudgetStarvedCellsAreRecordedNotFatal) {
  Marginal m({2.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  core::ModelSweepConfig cfg;
  cfg.utilization = 0.9;
  cfg.solver.initial_bins = 16;
  cfg.solver.max_bins = 32;
  cfg.solver.target_relative_gap = 1e-10;
  cfg.solver.max_total_iterations = 400;
  const auto table = core::loss_vs_buffer_and_cutoff(m, cfg, {0.5, 1.0}, {1.0});
  ASSERT_EQ(table.values.size(), 2u);
  // Cells that merely exhausted their budget keep a usable value and are
  // listed in `issues`; the sweep as a whole must not throw.
  EXPECT_FALSE(table.ok());
  EXPECT_FALSE(table.issues.empty());
  for (const auto& row : table.values)
    for (double v : row) EXPECT_FALSE(std::isnan(v));
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("issue"), std::string::npos);
}

TEST(SweepRobustness, CellDeadlineRetriesCoarserThenMarksDegraded) {
  Marginal m({2.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  core::ModelSweepConfig cfg;
  cfg.utilization = 0.9;
  cfg.solver.initial_bins = 16;
  cfg.solver.max_bins = 1 << 16;
  cfg.solver.target_relative_gap = 1e-12;  // unreachable: every cell times out
  cfg.solver.max_total_iterations = 1000000000;

  runtime::RunManifest manifest;
  core::SweepRunOptions opts;
  opts.cell_deadline_ms = 1;
  opts.max_cell_retries = 2;
  opts.manifest = &manifest;
  const auto table = core::loss_vs_buffer_and_cutoff(m, cfg, {0.5}, {1.0}, opts);

  // The cell timed out, was retried at coarser bins, and ended degraded —
  // but still carries a usable (wide-bracket) value, and the sweep returns.
  ASSERT_EQ(table.values.size(), 1u);
  EXPECT_FALSE(std::isnan(table.values[0][0]));
  EXPECT_FALSE(table.ok());
  ASSERT_FALSE(table.issues.empty());
  EXPECT_NE(table.issues[0].diagnostics.message.find("deadline_exceeded"), std::string::npos);

  const std::string json = manifest.to_json();
  EXPECT_NE(json.find("\"deadline_exceeded\": true"), std::string::npos);
  EXPECT_NE(json.find("\"retries\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
  // Aggregate robustness counts appear in the cells summary.
  EXPECT_NE(json.find("\"timed_out\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"retried\": 1"), std::string::npos);
}

TEST(SweepRobustness, HealthySweepManifestCarriesNoRobustnessKeys) {
  Marginal m({2.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  core::ModelSweepConfig cfg;
  cfg.utilization = 0.8;
  cfg.solver.target_relative_gap = 0.5;
  runtime::RunManifest manifest;
  core::SweepRunOptions opts;
  opts.manifest = &manifest;
  const auto table = core::loss_vs_buffer_and_cutoff(m, cfg, {0.05}, {0.1}, opts);
  EXPECT_TRUE(table.ok());
  // Default-configured runs must emit byte-identical manifests to before
  // the robustness layer existed: no flag keys anywhere. (Quote-delimited
  // searches: the embedded metrics snapshot legitimately contains the
  // metric *name* lrd_solver_deadline_exceeded_total.)
  const std::string json = manifest.to_json();
  EXPECT_EQ(json.find("\"deadline_exceeded\""), std::string::npos);
  EXPECT_EQ(json.find("\"timed_out\""), std::string::npos);
  EXPECT_EQ(json.find("\"degraded\""), std::string::npos);
  EXPECT_EQ(json.find("\"retried\""), std::string::npos);
  EXPECT_EQ(json.find("\"retries\""), std::string::npos);
}

}  // namespace
