#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dist/truncated_pareto.hpp"
#include "numerics/random.hpp"
#include "test_helpers.hpp"

namespace {

using lrd::dist::TruncatedPareto;
using lrd::testing::integrate_tail;
using lrd::testing::simpson;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(TruncatedPareto, ConstructionValidation) {
  EXPECT_THROW(TruncatedPareto(0.0, 1.5, 1.0), std::invalid_argument);
  EXPECT_THROW(TruncatedPareto(1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TruncatedPareto(1.0, 0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(TruncatedPareto(1.0, 1.5, 0.0), std::invalid_argument);
  EXPECT_NO_THROW(TruncatedPareto(1.0, 1.5, kInf));
}

TEST(TruncatedPareto, CcdfMatchesEq6) {
  TruncatedPareto d(2.0, 1.4, 100.0);
  // Pr{T > t} = ((t + theta)/theta)^-alpha for t < T_c.
  EXPECT_DOUBLE_EQ(d.ccdf_open(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.ccdf_open(-1.0), 1.0);
  EXPECT_NEAR(d.ccdf_open(2.0), std::pow(2.0, -1.4), 1e-14);
  EXPECT_NEAR(d.ccdf_open(18.0), std::pow(10.0, -1.4), 1e-14);
  EXPECT_DOUBLE_EQ(d.ccdf_open(100.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ccdf_open(1000.0), 0.0);
}

TEST(TruncatedPareto, AtomAtCutoff) {
  TruncatedPareto d(2.0, 1.4, 100.0);
  const double atom = std::pow(102.0 / 2.0, -1.4);
  EXPECT_NEAR(d.atom_mass(), atom, 1e-15);
  // Closed ccdf keeps the atom: Pr{T >= T_c} = atom, Pr{T > T_c} = 0.
  EXPECT_NEAR(d.ccdf_closed(100.0), atom, 1e-15);
  EXPECT_DOUBLE_EQ(d.ccdf_open(100.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ccdf_closed(100.0 + 1e-9), 0.0);
}

TEST(TruncatedPareto, NoAtomWhenUntruncated) {
  TruncatedPareto d(2.0, 1.4, kInf);
  EXPECT_DOUBLE_EQ(d.atom_mass(), 0.0);
  EXPECT_GT(d.ccdf_open(1e9), 0.0);
}

class TruncatedParetoParams
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(TruncatedParetoParams, MeanMatchesEq25) {
  const auto [theta, alpha, cutoff] = GetParam();
  TruncatedPareto d(theta, alpha, cutoff);
  // Eq. 25: E[T] = theta/(alpha-1) [1 - (T_c/theta + 1)^{1-alpha}].
  const double tail = std::isinf(cutoff) ? 0.0 : std::pow(cutoff / theta + 1.0, 1.0 - alpha);
  EXPECT_NEAR(d.mean(), theta / (alpha - 1.0) * (1.0 - tail), 1e-12 * d.mean());
}

TEST_P(TruncatedParetoParams, MeanMatchesNumericIntegral) {
  const auto [theta, alpha, cutoff] = GetParam();
  TruncatedPareto d(theta, alpha, cutoff);
  const double numeric =
      std::isinf(cutoff)
          ? integrate_tail([&](double t) { return d.ccdf_open(t); }, 0.0, theta)
          : simpson([&](double t) { return d.ccdf_open(t); }, 0.0, cutoff, 200000);
  EXPECT_NEAR(d.mean(), numeric, 1e-5 * d.mean());
}

TEST_P(TruncatedParetoParams, ExcessMeanMatchesNumericIntegral) {
  const auto [theta, alpha, cutoff] = GetParam();
  TruncatedPareto d(theta, alpha, cutoff);
  for (double u : {0.0, theta / 2.0, theta, 5.0 * theta}) {
    if (!std::isinf(cutoff) && u >= cutoff) continue;
    const double numeric =
        std::isinf(cutoff)
            ? integrate_tail([&](double t) { return d.ccdf_open(t); }, u, theta)
            : simpson([&](double t) { return d.ccdf_open(t); }, u, cutoff, 200000);
    EXPECT_NEAR(d.excess_mean(u), numeric, 1e-5 * (numeric + 1e-12)) << "u = " << u;
  }
}

TEST_P(TruncatedParetoParams, ExcessMeanIsDecreasingAndVanishesAtCutoff) {
  const auto [theta, alpha, cutoff] = GetParam();
  TruncatedPareto d(theta, alpha, cutoff);
  double prev = d.excess_mean(0.0);
  const double hi = std::isinf(cutoff) ? 50.0 * theta : cutoff;
  for (double u = hi / 20.0; u <= hi; u += hi / 20.0) {
    const double cur = d.excess_mean(u);
    EXPECT_LE(cur, prev + 1e-15);
    prev = cur;
  }
  if (!std::isinf(cutoff)) {
    EXPECT_DOUBLE_EQ(d.excess_mean(cutoff), 0.0);
    EXPECT_DOUBLE_EQ(d.excess_mean(2.0 * cutoff), 0.0);
  }
}

TEST_P(TruncatedParetoParams, SampleMomentsMatch) {
  const auto [theta, alpha, cutoff] = GetParam();
  TruncatedPareto d(theta, alpha, cutoff);
  lrd::numerics::Rng rng(1234);
  const int n = 400000;
  double s = 0.0;
  int at_cutoff = 0;
  for (int i = 0; i < n; ++i) {
    const double t = d.sample(rng);
    ASSERT_GT(t, 0.0);
    ASSERT_LE(t, cutoff);
    s += t;
    if (t == cutoff) {
      ++at_cutoff;
    }
  }
  // Heavy tails converge slowly; allow a generous but meaningful tolerance.
  EXPECT_NEAR(s / n, d.mean(), 0.12 * d.mean());
  if (!std::isinf(cutoff)) {
    EXPECT_NEAR(at_cutoff / static_cast<double>(n), d.atom_mass(), 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TruncatedParetoParams,
    ::testing::Values(std::make_tuple(1.0, 1.5, 10.0), std::make_tuple(0.02, 1.2, 5.0),
                      std::make_tuple(0.0272, 1.34, 100.0), std::make_tuple(2.0, 1.9, 50.0),
                      std::make_tuple(1.0, 1.5, kInf), std::make_tuple(0.1, 1.8, kInf),
                      std::make_tuple(5.0, 2.5, 100.0), std::make_tuple(1.0, 2.0, 30.0)));

TEST(TruncatedPareto, VarianceFiniteCutoffMatchesNumeric) {
  TruncatedPareto d(1.0, 1.5, 20.0);
  // E[T^2] = 2 int t ccdf(t) dt.
  const double second =
      2.0 * simpson([&](double t) { return t * d.ccdf_open(t); }, 0.0, 20.0, 200000);
  EXPECT_NEAR(d.variance(), second - d.mean() * d.mean(), 1e-4);
}

TEST(TruncatedPareto, VarianceAlphaTwoBranch) {
  TruncatedPareto d(1.0, 2.0, 20.0);
  const double second =
      2.0 * simpson([&](double t) { return t * d.ccdf_open(t); }, 0.0, 20.0, 200000);
  EXPECT_NEAR(d.variance(), second - d.mean() * d.mean(), 1e-4);
}

TEST(TruncatedPareto, VarianceInfiniteForHeavyUntruncated) {
  TruncatedPareto d(1.0, 1.5, kInf);
  EXPECT_TRUE(std::isinf(d.variance()));
}

TEST(TruncatedPareto, VarianceFiniteForLightUntruncated) {
  TruncatedPareto d(1.0, 3.0, kInf);
  // Pareto-like: Var = 2 theta^2 / ((a-1)(a-2)) - mean^2.
  const double second = 2.0 / (2.0 * 1.0);
  EXPECT_NEAR(d.variance(), second - 0.25, 1e-12);
}

TEST(TruncatedPareto, HurstMappings) {
  EXPECT_NEAR(TruncatedPareto::alpha_from_hurst(0.9), 1.2, 1e-15);
  EXPECT_NEAR(TruncatedPareto::alpha_from_hurst(0.55), 1.9, 1e-15);
  EXPECT_NEAR(TruncatedPareto::hurst_from_alpha(1.2), 0.9, 1e-15);
  EXPECT_THROW(TruncatedPareto::alpha_from_hurst(0.5), std::invalid_argument);
  EXPECT_THROW(TruncatedPareto::alpha_from_hurst(1.0), std::invalid_argument);
  EXPECT_THROW(TruncatedPareto::hurst_from_alpha(2.5), std::invalid_argument);
  // Round trip.
  for (double h : {0.55, 0.7, 0.83, 0.9, 0.95})
    EXPECT_NEAR(TruncatedPareto::hurst_from_alpha(TruncatedPareto::alpha_from_hurst(h)), h, 1e-14);
}

TEST(TruncatedPareto, ThetaCalibrationRecoversMeanEpoch) {
  // theta = mean_epoch (alpha - 1) makes the T_c = inf mean equal mean_epoch.
  const double mean_epoch = 0.080;
  const double alpha = 1.34;
  const double theta = TruncatedPareto::theta_from_mean_epoch(mean_epoch, alpha);
  TruncatedPareto d(theta, alpha, kInf);
  EXPECT_NEAR(d.mean(), mean_epoch, 1e-12);
}

TEST(TruncatedPareto, FromHurstFactory) {
  auto d = TruncatedPareto::from_hurst(0.83, 0.080, 50.0);
  EXPECT_NEAR(d.alpha(), 1.34, 1e-12);
  EXPECT_NEAR(d.hurst(), 0.83, 1e-12);
  EXPECT_DOUBLE_EQ(d.cutoff(), 50.0);
  EXPECT_NEAR(d.theta(), 0.080 * 0.34, 1e-12);
}

TEST(TruncatedPareto, ResidualCcdfMatchesEq7) {
  // Eq. 7: Pr{tau_res >= t} = ((t+th)^{1-a} - (Tc+th)^{1-a}) / (th^{1-a} - (Tc+th)^{1-a}).
  TruncatedPareto d(2.0, 1.3, 40.0);
  const double a = 1.3, th = 2.0, tc = 40.0;
  for (double t : {0.0, 0.5, 5.0, 20.0, 39.0}) {
    const double expected = (std::pow(t + th, 1.0 - a) - std::pow(tc + th, 1.0 - a)) /
                            (std::pow(th, 1.0 - a) - std::pow(tc + th, 1.0 - a));
    EXPECT_NEAR(d.residual_ccdf(t), expected, 1e-12) << "t = " << t;
  }
  EXPECT_DOUBLE_EQ(d.residual_ccdf(40.0), 0.0);
  EXPECT_DOUBLE_EQ(d.residual_ccdf(100.0), 0.0);
  EXPECT_DOUBLE_EQ(d.residual_ccdf(0.0), 1.0);
}

TEST(TruncatedPareto, ResidualDecaysAsPowerLawWhenUntruncated) {
  // phi(t) ~ t^{-(alpha-1)} for T_c = inf: doubling t scales the residual
  // ccdf by 2^{1-alpha} asymptotically.
  TruncatedPareto d(1.0, 1.4, kInf);
  const double r1 = d.residual_ccdf(1000.0);
  const double r2 = d.residual_ccdf(2000.0);
  EXPECT_NEAR(r2 / r1, std::pow(2.0, -0.4), 1e-3);
}

}  // namespace
