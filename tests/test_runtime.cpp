// Tests for the parallel experiment runtime: work-stealing executor,
// content-addressed solver cache, and sweep checkpoint/resume.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/model.hpp"
#include "numerics/parallel.hpp"
#include "runtime/cache.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/crc32.hpp"
#include "runtime/executor.hpp"
#include "runtime/manifest.hpp"

namespace {

using namespace lrd;

void busy_wait(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

// ---------------------------------------------------------------- executor

TEST(RuntimeExecutor, CoversEveryIndexOnceUnderImbalancedCosts) {
  // The first block is two orders of magnitude heavier than the rest, so
  // correctness must survive heavy redistribution.
  constexpr std::size_t kN = 512;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  runtime::Executor exec;
  exec.parallel_for(
      kN,
      [&](std::size_t i) {
        if (i < kN / 8) busy_wait(std::chrono::microseconds(200));
        hits[i].fetch_add(1);
      },
      8);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  const auto stats = exec.last_job_stats();
  EXPECT_EQ(stats.tasks, kN);
  EXPECT_GT(stats.participants, 1u);
  EXPECT_EQ(stats.busy_seconds.size(), stats.participants);
}

TEST(RuntimeExecutor, StealsFromTheLoadedWorker) {
  // Worker 0's initial block is the only expensive one; everyone else
  // drains their own block quickly and must steal to stay busy.
  constexpr std::size_t kN = 256;
  std::atomic<std::size_t> executed{0};
  runtime::Executor exec;
  exec.parallel_for(
      kN,
      [&](std::size_t i) {
        if (i < kN / 4) busy_wait(std::chrono::microseconds(500));
        executed.fetch_add(1);
      },
      4);
  EXPECT_EQ(executed.load(), kN);
  EXPECT_GE(exec.last_job_stats().steals, 1u);
}

TEST(RuntimeExecutor, FirstExceptionCancelsRemainingTasks) {
  // The very first task to run throws (whichever worker gets there first,
  // so the test cannot lose a scheduling race on a loaded machine); every
  // task not yet started must then be skipped, not ground through.
  constexpr std::size_t kN = 1000;
  std::atomic<bool> thrown{false};
  std::atomic<std::size_t> executed{0};
  runtime::Executor exec;
  try {
    exec.parallel_for(
        kN,
        [&](std::size_t) {
          if (!thrown.exchange(true)) throw std::runtime_error("boom");
          busy_wait(std::chrono::microseconds(100));
          executed.fetch_add(1);
        },
        4);
    FAIL() << "expected the task exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Only tasks already in flight when the cancel hit may still finish.
  EXPECT_LT(executed.load(), kN / 2) << "cancellation should skip unstarted tasks";
  EXPECT_LT(exec.last_job_stats().tasks, kN);
}

TEST(RuntimeExecutor, SerialPathStopsAtFirstThrow) {
  std::size_t executed = 0;
  EXPECT_THROW(runtime::Executor::global().parallel_for(
                   100,
                   [&](std::size_t i) {
                     if (i == 3) throw std::logic_error("early");
                     ++executed;
                   },
                   1),
               std::logic_error);
  EXPECT_EQ(executed, 3u);
}

TEST(RuntimeExecutor, NestedParallelForRunsInline) {
  std::atomic<std::size_t> total{0};
  numerics::parallel_for(
      4,
      [&](std::size_t) {
        // A task submitting a nested job must not deadlock on the shared
        // pool; the nested call runs inline on the worker.
        numerics::parallel_for(8, [&](std::size_t) { total.fetch_add(1); }, 4);
      },
      2);
  EXPECT_EQ(total.load(), 4u * 8u);
}

TEST(RuntimeExecutor, HandlesEmptyAndSingleElementJobs) {
  std::atomic<std::size_t> count{0};
  runtime::Executor exec;
  exec.parallel_for(0, [&](std::size_t) { count.fetch_add(1); }, 8);
  EXPECT_EQ(count.load(), 0u);
  exec.parallel_for(1, [&](std::size_t) { count.fetch_add(1); }, 8);
  EXPECT_EQ(count.load(), 1u);
  EXPECT_EQ(exec.last_job_stats().tasks, 1u);
}

TEST(RuntimeExecutor, RangesCoverEveryIndexExactlyOnce) {
  // The batched API must partition [0, n) into disjoint half-open
  // ranges whose union is exact, for grains that do and don't divide n.
  constexpr std::size_t kN = 777;
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  std::size_t{1024}}) {
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    runtime::Executor exec;
    exec.parallel_for_ranges(
        kN, grain,
        [&](std::size_t begin, std::size_t end) {
          ASSERT_LT(begin, end);
          ASSERT_LE(end, kN);
          for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        },
        4);
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    EXPECT_EQ(exec.last_job_stats().tasks, kN) << "grain " << grain;
  }
}

TEST(RuntimeExecutor, RangesBatchCallsByGrain) {
  // With grain g, a worker draining its own block must receive batches
  // of up to g indices per callback — far fewer calls than indices.
  constexpr std::size_t kN = 4096;
  std::atomic<std::size_t> calls{0}, covered{0};
  runtime::Executor exec;
  exec.parallel_for_ranges(
      kN, 256,
      [&](std::size_t begin, std::size_t end) {
        calls.fetch_add(1);
        covered.fetch_add(end - begin);
      },
      2);
  EXPECT_EQ(covered.load(), kN);
  // 16 perfect batches; stealing can split some, but nowhere near 1:1.
  EXPECT_LE(calls.load(), kN / 8);
}

TEST(RuntimeExecutor, RangesSerialFallbackChunksByGrain) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  runtime::Executor::global().parallel_for_ranges(
      10, 4, [&](std::size_t begin, std::size_t end) { ranges.emplace_back(begin, end); }, 1);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(ranges[1], (std::pair<std::size_t, std::size_t>{4, 8}));
  EXPECT_EQ(ranges[2], (std::pair<std::size_t, std::size_t>{8, 10}));
}

TEST(RuntimeExecutor, NumericsRangeWrapperMatchesSerialSum) {
  // numerics::parallel_for_ranges templates down to the same executor
  // API; a compensated per-range partial sum must reproduce the serial
  // total regardless of how ranges land on workers.
  constexpr std::size_t kN = 10000;
  std::atomic<long long> total{0};
  numerics::parallel_for_ranges(
      kN, 128,
      [&](std::size_t begin, std::size_t end) {
        long long part = 0;
        for (std::size_t i = begin; i < end; ++i) part += static_cast<long long>(i);
        total.fetch_add(part);
      },
      4);
  EXPECT_EQ(total.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

// -------------------------------------------------------------- cache keys

TEST(RuntimeCacheKey, CanonicalDoubleEncoding) {
  EXPECT_EQ(runtime::Fnv1a().f64(0.0).digest(), runtime::Fnv1a().f64(-0.0).digest());
  EXPECT_EQ(runtime::Fnv1a().f64(std::nan("1")).digest(),
            runtime::Fnv1a().f64(std::nan("2")).digest());
  EXPECT_NE(runtime::Fnv1a().f64(1.0).digest(), runtime::Fnv1a().f64(2.0).digest());
  // Length prefixes keep concatenations from aliasing.
  EXPECT_NE(runtime::Fnv1a().str("ab").str("c").digest(),
            runtime::Fnv1a().str("a").str("bc").digest());
}

TEST(RuntimeCacheKey, ModelKeyStableAndSensitive) {
  const dist::Marginal m({2.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  // Same distribution listed in a different order: Marginal canonicalizes,
  // so the key must not depend on input order.
  const dist::Marginal permuted({10.0, 2.0, 6.0}, {0.3, 0.3, 0.4});
  core::ModelConfig mc;
  mc.hurst = 0.85;
  mc.mean_epoch = 0.05;
  mc.cutoff = 10.0;
  mc.utilization = 0.8;
  mc.normalized_buffer = 0.2;
  queueing::SolverConfig scfg;

  const auto key = core::model_cell_key(m, mc, scfg);
  EXPECT_EQ(key, core::model_cell_key(m, mc, scfg));
  EXPECT_EQ(key, core::model_cell_key(permuted, mc, scfg));

  auto mc2 = mc;
  mc2.normalized_buffer = 0.25;
  EXPECT_NE(key, core::model_cell_key(m, mc2, scfg));
  auto scfg2 = scfg;
  scfg2.target_relative_gap *= 0.5;
  EXPECT_NE(key, core::model_cell_key(m, mc, scfg2));
}

// ------------------------------------------------------------------ cache

TEST(RuntimeCache, HitAndMissAccounting) {
  runtime::SolverCache cache;
  EXPECT_FALSE(cache.lookup(42).has_value());
  cache.store(42, 0.125);
  const auto hit = cache.lookup(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0.125);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.disk_path().empty());
}

TEST(RuntimeCache, DiskTierRoundTripsExactDoubles) {
  const std::string dir = ::testing::TempDir() + "lrd_cache_rt";
  std::remove((dir + "/solver_cache.txt").c_str());
  const double v1 = 1.0 / 3.0, v2 = 4.9406564584124654e-324;
  {
    runtime::SolverCache cache(dir);
    cache.store(7, v1);
    cache.store(9, v2);
  }
  runtime::SolverCache reopened(dir);
  EXPECT_EQ(reopened.stats().loaded, 2u);
  ASSERT_TRUE(reopened.lookup(7).has_value());
  EXPECT_EQ(*reopened.lookup(7), v1);
  ASSERT_TRUE(reopened.lookup(9).has_value());
  EXPECT_EQ(*reopened.lookup(9), v2);
}

TEST(RuntimeCache, SkipsMalformedDiskLines) {
  const std::string dir = ::testing::TempDir() + "lrd_cache_bad";
  std::remove((dir + "/solver_cache.txt").c_str());
  std::remove((dir + "/solver_cache.txt.quarantine").c_str());
  {
    runtime::SolverCache cache(dir);
    cache.store(1, 2.0);
  }
  {
    std::ofstream f(dir + "/solver_cache.txt", std::ios::app);
    f << "this line is garbage\n";
  }
  runtime::SolverCache reopened(dir);
  EXPECT_EQ(reopened.stats().loaded, 1u);
  EXPECT_TRUE(reopened.lookup(1).has_value());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(RuntimeCache, QuarantinesCorruptRecordsAndCompacts) {
  const std::string dir = ::testing::TempDir() + "lrd_cache_crc";
  std::remove((dir + "/solver_cache.txt").c_str());
  std::remove((dir + "/solver_cache.txt.quarantine").c_str());
  {
    runtime::SolverCache cache(dir);
    cache.store(1, 2.0);
    cache.store(2, 3.0);
  }
  {
    std::ofstream f(dir + "/solver_cache.txt", std::ios::app);
    // A bit-flipped record: well-formed shape, wrong CRC.
    f << "00000000000000ff 1.5 deadbeef\n";
    // A torn append: payload truncated before the CRC. In a v2 file this
    // must NOT be accepted as a legacy 2-token record — its value could
    // be a plausible-looking truncation of the real one.
    f << "00000000000000aa 2.5\n";
  }
  runtime::SolverCache reopened(dir);
  EXPECT_EQ(reopened.stats().loaded, 2u);
  EXPECT_EQ(reopened.stats().corrupt, 2u);
  EXPECT_FALSE(reopened.lookup(0xff).has_value());
  EXPECT_FALSE(reopened.lookup(0xaa).has_value());
  // Corruption triggers an immediate clean rewrite...
  EXPECT_GE(reopened.stats().compactions, 1u);
  // ...and the damaged raw lines land in the quarantine for inspection.
  const std::string q = slurp(reopened.quarantine_path());
  EXPECT_NE(q.find("deadbeef"), std::string::npos);
  EXPECT_NE(q.find("00000000000000aa 2.5"), std::string::npos);
  // A third open sees a healthy file: nothing corrupt, values intact.
  runtime::SolverCache clean(dir);
  EXPECT_EQ(clean.stats().corrupt, 0u);
  EXPECT_EQ(clean.stats().loaded, 2u);
  ASSERT_TRUE(clean.lookup(1).has_value());
  EXPECT_EQ(*clean.lookup(1), 2.0);
}

TEST(RuntimeCache, LegacyHeaderlessFileLoadsWithLastWriteWinning) {
  const std::string dir = ::testing::TempDir() + "lrd_cache_v1";
  std::remove((dir + "/solver_cache.txt").c_str());
  std::remove((dir + "/solver_cache.txt.quarantine").c_str());
  {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream f(dir + "/solver_cache.txt", std::ios::trunc);
    // v1-era file: no header, no CRCs, a duplicated key (append-only
    // reruns did that); the later record must win.
    f << "0000000000000005 1\n";
    f << "0000000000000007 0.25\n";
    f << "0000000000000005 2\n";
  }
  runtime::SolverCache cache(dir);
  EXPECT_EQ(cache.stats().loaded, 3u);
  EXPECT_EQ(cache.stats().duplicates, 1u);
  EXPECT_EQ(cache.stats().corrupt, 0u);
  ASSERT_TRUE(cache.lookup(5).has_value());
  EXPECT_EQ(*cache.lookup(5), 2.0);
  ASSERT_TRUE(cache.lookup(7).has_value());
  EXPECT_EQ(*cache.lookup(7), 0.25);
}

TEST(RuntimeCache, ExplicitCompactRewritesCleanV2File) {
  const std::string dir = ::testing::TempDir() + "lrd_cache_compact";
  std::remove((dir + "/solver_cache.txt").c_str());
  std::remove((dir + "/solver_cache.txt.quarantine").c_str());
  runtime::SolverCache cache(dir);
  cache.store(9, 0.5);
  cache.store(3, 1.0 / 3.0);
  ASSERT_TRUE(cache.compact());
  EXPECT_EQ(cache.stats().compactions, 1u);
  const std::string text = slurp(dir + "/solver_cache.txt");
  EXPECT_EQ(text.rfind("# lrd-solver-cache v2", 0), 0u) << "compacted file keeps the v2 header";
  // The compacted file reloads bit-exactly, and appends still work on the
  // freshly renamed inode.
  cache.store(11, 0.125);
  runtime::SolverCache reopened(dir);
  EXPECT_EQ(reopened.stats().loaded, 3u);
  EXPECT_EQ(reopened.stats().duplicates, 0u);
  ASSERT_TRUE(reopened.lookup(3).has_value());
  EXPECT_EQ(*reopened.lookup(3), 1.0 / 3.0);
  ASSERT_TRUE(reopened.lookup(11).has_value());
  EXPECT_EQ(*reopened.lookup(11), 0.125);
}

// ---------------------------------------------------- cache: sharded tier

TEST(RuntimeCache, ShardedMultiWriterStressStaysConsistent) {
  // Many writers and readers hammer a bounded memory-only cache with an
  // overlapping key range. Run under TSan this is the striped-locking
  // proof; in any build the final accounting must balance and the
  // eviction policy must hold the capacity bound.
  runtime::SolverCacheConfig cfg;
  cfg.capacity_cost = 64.0;  // default 1.0-cost entries: max 4 per shard
  runtime::SolverCache cache(cfg);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 4000;
  std::atomic<std::uint64_t> found{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &found, t] {
      std::uint64_t rng = 0x9E3779B97F4A7C15ull * (t + 1);
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t key = (rng >> 33) % 512;  // heavy key overlap
        if ((rng & 3) == 0) {
          cache.store(key, static_cast<double>(key) * 0.5);
        } else if (const auto hit = cache.lookup(key)) {
          // A served value is always the one every writer stores for
          // that key — a torn or cross-key read would fail here.
          if (*hit == static_cast<double>(key) * 0.5) found.fetch_add(1);
          else std::abort();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const auto stats = cache.stats();
  EXPECT_GT(found.load(), 0u);
  EXPECT_GT(stats.evictions, 0u) << "512 hot keys against capacity 64 must evict";
  EXPECT_LE(cache.size(), 64u) << "eviction holds every shard to its budget";
}

TEST(RuntimeCache, EvictsLeastRecentlyUsedFirstWithinAShard) {
  // Collect keys that land in one shard (shard_for mixes the key, so
  // probe), then overfill that shard and check the eviction order: the
  // oldest untouched key goes first, and a lookup refreshes recency.
  runtime::SolverCacheConfig cfg;
  cfg.capacity_cost = 3.0 * runtime::SolverCache::kShards;  // 3 entries per shard
  runtime::SolverCache cache(cfg);

  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 1; keys.size() < 5; ++k)
    if (((k * 0x9E3779B97F4A7C15ull) >> 60) == 0) keys.push_back(k);

  cache.store(keys[0], 0.0);
  cache.store(keys[1], 1.0);
  cache.store(keys[2], 2.0);           // shard full: {2, 1, 0} MRU->LRU
  ASSERT_TRUE(cache.lookup(keys[0]));  // refresh 0: {0, 2, 1}
  cache.store(keys[3], 3.0);           // evicts 1 (LRU), not 0
  EXPECT_TRUE(cache.lookup(keys[0]).has_value());
  EXPECT_FALSE(cache.lookup(keys[1]).has_value()) << "LRU key evicted";
  EXPECT_TRUE(cache.lookup(keys[2]).has_value());
  EXPECT_TRUE(cache.lookup(keys[3]).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Cost-weighted: one entry heavier than the whole budget evicts the
  // rest of the shard but stays resident itself (just computed).
  cache.store(keys[4], 4.0, 100.0);
  EXPECT_TRUE(cache.lookup(keys[4]).has_value());
  EXPECT_FALSE(cache.lookup(keys[0]).has_value());
}

TEST(RuntimeCache, DiskTierServesEvictedEntriesAsSecondLevel) {
  const std::string dir = ::testing::TempDir() + "lrd_cache_l2";
  std::filesystem::remove_all(dir);
  runtime::SolverCacheConfig cfg;
  cfg.disk_dir = dir;
  cfg.capacity_cost = 16.0;  // 1 entry per shard: heavy eviction
  runtime::SolverCache cache(cfg);
  for (std::uint64_t k = 1; k <= 64; ++k) cache.store(k, static_cast<double>(k));
  ASSERT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.size(), 16u);

  // Every stored key is still served — evicted ones from the disk tier,
  // counted as disk_hits and promoted back into memory.
  for (std::uint64_t k = 1; k <= 64; ++k) {
    const auto hit = cache.lookup(k);
    ASSERT_TRUE(hit.has_value()) << "key " << k;
    EXPECT_EQ(*hit, static_cast<double>(k));
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 64u);
  EXPECT_GT(stats.disk_hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(RuntimeCache, SaltMismatchDropsPersistedRecordsAsStale) {
  const std::string dir = ::testing::TempDir() + "lrd_cache_salt";
  std::filesystem::remove_all(dir);
  {
    runtime::SolverCacheConfig cfg;
    cfg.disk_dir = dir;
    cfg.version_salt = "solver-numerics-v0";
    runtime::SolverCache cache(cfg);
    cache.store(5, 0.5);
    cache.store(6, 0.75);
  }
  // Same file, new salt: every persisted loss was computed by "other
  // numerics" and must be dropped, and the file compacted clean under
  // the new salt so the drop happens exactly once.
  {
    runtime::SolverCache cache(dir);
    EXPECT_EQ(cache.stats().loaded, 0u);
    EXPECT_EQ(cache.stats().stale, 2u);
    EXPECT_GE(cache.stats().compactions, 1u);
    EXPECT_FALSE(cache.lookup(5).has_value());
    cache.store(7, 1.25);
  }
  runtime::SolverCache reopened(dir);
  EXPECT_EQ(reopened.stats().stale, 0u) << "compaction rewrote the salt line";
  EXPECT_EQ(reopened.stats().loaded, 1u);
  EXPECT_TRUE(reopened.lookup(7).has_value());
}

TEST(RuntimeCache, MigratesV1FileToSaltedV2OnCompact) {
  const std::string dir = ::testing::TempDir() + "lrd_cache_migrate";
  std::filesystem::remove_all(dir);
  {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream f(dir + "/solver_cache.txt", std::ios::trunc);
    f << "000000000000000a 0.5\n";   // v1: no header, no salt, no CRC
    f << "000000000000000b 0.25\n";
  }
  {
    runtime::SolverCache cache(dir);
    EXPECT_EQ(cache.stats().loaded, 2u);
    EXPECT_EQ(cache.stats().stale, 0u) << "a salt-less legacy file is not stale";
    ASSERT_TRUE(cache.compact());
  }
  const std::string text = slurp(dir + "/solver_cache.txt");
  EXPECT_EQ(text.rfind("# lrd-solver-cache v2", 0), 0u);
  EXPECT_NE(text.find(std::string("# salt ") + std::string(runtime::kCacheVersionSalt)),
            std::string::npos)
      << "migration stamps the current salt";
  runtime::SolverCache reopened(dir);
  EXPECT_EQ(reopened.stats().loaded, 2u);
  EXPECT_EQ(reopened.stats().corrupt, 0u);
  ASSERT_TRUE(reopened.lookup(0xb).has_value());
  EXPECT_EQ(*reopened.lookup(0xb), 0.25);
}

TEST(RuntimeCache, InvalidateClearsBothTiersAndSurvivesReload) {
  const std::string dir = ::testing::TempDir() + "lrd_cache_inval";
  std::filesystem::remove_all(dir);
  runtime::SolverCache cache(dir);
  cache.store(1, 1.0);
  cache.store(2, 2.0);
  ASSERT_TRUE(cache.invalidate());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // New stores after invalidation persist normally.
  cache.store(3, 3.0);
  runtime::SolverCache reopened(dir);
  EXPECT_EQ(reopened.stats().loaded, 1u);
  EXPECT_FALSE(reopened.lookup(1).has_value());
  EXPECT_TRUE(reopened.lookup(3).has_value());
}

// ------------------------------------------------------------- checkpoint

TEST(RuntimeCheckpoint, RoundTripsCellsExactly) {
  const std::string path = ::testing::TempDir() + "lrd_ckpt_rt.txt";
  std::remove(path.c_str());
  {
    runtime::SweepCheckpoint ck(path, 0xabcdef, 3, 4);
    ck.record(0, 0, 1.0 / 3.0);
    ck.record(2, 3, 1e-300);
    ASSERT_TRUE(ck.flush());
  }
  runtime::SweepCheckpoint ck(path, 0xabcdef, 3, 4);
  const auto cells = ck.load();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].value, 1.0 / 3.0);
  EXPECT_EQ(cells[1].row, 2u);
  EXPECT_EQ(cells[1].col, 3u);
  EXPECT_EQ(cells[1].value, 1e-300);
}

TEST(RuntimeCheckpoint, IgnoresIncompatibleFiles) {
  const std::string path = ::testing::TempDir() + "lrd_ckpt_stale.txt";
  std::remove(path.c_str());
  {
    runtime::SweepCheckpoint ck(path, 0x1111, 2, 2);
    ck.record(0, 0, 0.5);
    ASSERT_TRUE(ck.flush());
  }
  // Different config hash: stale surface, must be ignored.
  runtime::SweepCheckpoint stale(path, 0x2222, 2, 2);
  EXPECT_TRUE(stale.load().empty());
  // Different grid shape: also ignored.
  runtime::SweepCheckpoint reshaped(path, 0x1111, 3, 2);
  EXPECT_TRUE(reshaped.load().empty());
  // Matching binding still loads.
  runtime::SweepCheckpoint ok(path, 0x1111, 2, 2);
  EXPECT_EQ(ok.load().size(), 1u);
}

TEST(RuntimeCheckpoint, SkipsCorruptRecordsAndCountsThem) {
  const std::string path = ::testing::TempDir() + "lrd_ckpt_crc.txt";
  std::remove(path.c_str());
  {
    runtime::SweepCheckpoint ck(path, 0x77, 4, 4);
    ck.record(0, 0, 0.5);
    ck.record(1, 2, 0.25);
    ASSERT_TRUE(ck.flush());
  }
  {
    std::ofstream f(path, std::ios::app);
    f << "2 2 0.125 00000000\n";  // bit-flipped: shape ok, CRC wrong
    f << "3 3 0.0625\n";          // torn record: no CRC — untrusted in a v2 file
    f << "9 9 0.5 " << std::hex << runtime::crc32("9 9 0.5") << "\n";  // out of grid
  }
  runtime::SweepCheckpoint ck(path, 0x77, 4, 4);
  const auto cells = ck.load();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(ck.corrupt_records(), 3u);
  EXPECT_EQ(cells[0].value, 0.5);
  EXPECT_EQ(cells[1].value, 0.25);
}

TEST(RuntimeCheckpoint, LoadsLegacyV1Files) {
  const std::string path = ::testing::TempDir() + "lrd_ckpt_v1.txt";
  std::remove(path.c_str());
  {
    std::ofstream f(path, std::ios::trunc);
    f << "# lrd-sweep-checkpoint v1\n";
    f << "# config 0000000000000042 rows 2 cols 3\n";
    f << "0 1 0.5\n";
    f << "1 2 0.0078125\n";
  }
  runtime::SweepCheckpoint ck(path, 0x42, 2, 3);
  const auto cells = ck.load();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(ck.corrupt_records(), 0u);
  EXPECT_EQ(cells[0].row, 0u);
  EXPECT_EQ(cells[0].col, 1u);
  EXPECT_EQ(cells[0].value, 0.5);
  EXPECT_EQ(cells[1].value, 0.0078125);
}

TEST(RuntimeCheckpoint, WritesCrcOnEveryRecord) {
  const std::string path = ::testing::TempDir() + "lrd_ckpt_v2fmt.txt";
  std::remove(path.c_str());
  runtime::SweepCheckpoint ck(path, 0x1, 2, 2);
  ck.record(1, 0, 1.0 / 3.0);
  ASSERT_TRUE(ck.flush());
  std::ifstream in(path);
  std::string magic, config, record;
  std::getline(in, magic);
  std::getline(in, config);
  std::getline(in, record);
  EXPECT_EQ(magic, "# lrd-sweep-checkpoint v2");
  const auto last_space = record.find_last_of(' ');
  ASSERT_NE(last_space, std::string::npos);
  char expected[16];
  std::snprintf(expected, sizeof expected, "%08" PRIx32,
                runtime::crc32(std::string_view(record).substr(0, last_space)));
  EXPECT_EQ(record.substr(last_space + 1), expected);
}

// ---------------------------------------------------- sweep driver plumbing

core::ModelSweepConfig cheap_sweep_config() {
  core::ModelSweepConfig cfg;
  cfg.hurst = 0.85;
  cfg.mean_epoch = 0.05;
  cfg.utilization = 0.8;
  cfg.solver.target_relative_gap = 0.5;
  return cfg;
}

std::string csv_of(const core::SweepTable& t) {
  std::ostringstream os;
  t.print_csv(os);
  return os.str();
}

TEST(RuntimeSweep, InterruptedResumeIsBitIdentical) {
  const dist::Marginal m({2.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  const auto cfg = cheap_sweep_config();
  const std::vector<double> buffers{0.05, 0.1};
  const std::vector<double> cutoffs{0.1, 1.0};

  const auto uninterrupted = core::loss_vs_buffer_and_cutoff(m, cfg, buffers, cutoffs);
  const std::string expected_csv = csv_of(uninterrupted);

  // Full run with checkpointing, then truncate the file to two cells to
  // simulate an interrupt mid-sweep.
  const std::string path = ::testing::TempDir() + "lrd_sweep_resume.txt";
  std::remove(path.c_str());
  core::SweepRunOptions opts;
  opts.checkpoint_path = path;
  opts.checkpoint_every = 1;
  (void)core::loss_vs_buffer_and_cutoff(m, cfg, buffers, cutoffs, opts);
  {
    std::ifstream in(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u + 4u) << "expected header + one line per cell";
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < 4; ++i) out << lines[i] << '\n';
  }

  runtime::RunManifest manifest;
  core::SweepRunOptions resume_opts;
  resume_opts.checkpoint_path = path;
  resume_opts.resume = true;
  resume_opts.manifest = &manifest;
  const auto resumed = core::loss_vs_buffer_and_cutoff(m, cfg, buffers, cutoffs, resume_opts);

  EXPECT_EQ(csv_of(resumed), expected_csv);
  EXPECT_EQ(manifest.cells_from(runtime::RunManifest::CellSource::kCheckpoint), 2u);
  EXPECT_EQ(manifest.cells_from(runtime::RunManifest::CellSource::kComputed), 2u);
  EXPECT_EQ(manifest.total_cells(), 4u);
}

TEST(RuntimeSweep, WarmCacheServesEveryCell) {
  const dist::Marginal m({2.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  const auto cfg = cheap_sweep_config();
  const std::vector<double> buffers{0.05, 0.1};
  const std::vector<double> cutoffs{0.1, 1.0};

  runtime::SolverCache cache;
  core::SweepRunOptions opts;
  opts.cache = &cache;
  const auto cold = core::loss_vs_buffer_and_cutoff(m, cfg, buffers, cutoffs, opts);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().stores, 4u);

  runtime::RunManifest manifest;
  opts.manifest = &manifest;
  const auto warm = core::loss_vs_buffer_and_cutoff(m, cfg, buffers, cutoffs, opts);
  EXPECT_EQ(cache.stats().hits, 4u);
  EXPECT_EQ(manifest.cells_from(runtime::RunManifest::CellSource::kCache), 4u);
  EXPECT_EQ(manifest.cells_from(runtime::RunManifest::CellSource::kComputed), 0u);
  EXPECT_EQ(csv_of(warm), csv_of(cold));
}

TEST(RuntimeSweep, PreCancelledSweepSkipsEveryCellAndResumeCompletes) {
  const dist::Marginal m({2.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  const auto cfg = cheap_sweep_config();
  const std::vector<double> buffers{0.05, 0.1};
  const std::vector<double> cutoffs{0.1, 1.0};
  const auto baseline = core::loss_vs_buffer_and_cutoff(m, cfg, buffers, cutoffs);

  const std::string path = ::testing::TempDir() + "lrd_sweep_precancel.txt";
  std::remove(path.c_str());
  runtime::CancellationToken token;
  token.cancel();
  core::SweepRunOptions opts;
  opts.checkpoint_path = path;
  opts.checkpoint_every = 1;
  opts.cancellation = &token;
  (void)core::loss_vs_buffer_and_cutoff(m, cfg, buffers, cutoffs, opts);

  // Every cell was skipped, so the flushed checkpoint is well-formed but
  // holds no cells; the resumed run recomputes the full surface.
  {
    runtime::SweepCheckpoint probe(path, 0, 2, 2);  // wrong binding: just parse
    EXPECT_TRUE(probe.load().empty());
    EXPECT_EQ(probe.corrupt_records(), 0u);
  }
  core::SweepRunOptions resume_opts;
  resume_opts.checkpoint_path = path;
  resume_opts.resume = true;
  const auto resumed = core::loss_vs_buffer_and_cutoff(m, cfg, buffers, cutoffs, resume_opts);
  EXPECT_EQ(csv_of(resumed), csv_of(baseline));
}

TEST(RuntimeSweep, MidSweepCancellationResumesBitIdentically) {
  const dist::Marginal m({2.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  const auto cfg = cheap_sweep_config();
  const std::vector<double> buffers{0.05, 0.1};
  const std::vector<double> cutoffs{0.1, 1.0};
  const auto baseline = core::loss_vs_buffer_and_cutoff(m, cfg, buffers, cutoffs);

  const std::string path = ::testing::TempDir() + "lrd_sweep_cancel.txt";
  std::remove(path.c_str());
  runtime::CancellationToken token;
  core::SweepRunOptions opts;
  opts.checkpoint_path = path;
  opts.checkpoint_every = 1;
  opts.cancellation = &token;
  opts.threads = 2;
  // Cancel from outside while cells are in flight. However many cells the
  // race lets through (zero to all four), the invariant is the same: the
  // checkpoint holds only completed cells and a --resume run finishes the
  // surface bit-identically to an uninterrupted one.
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.cancel();
  });
  (void)core::loss_vs_buffer_and_cutoff(m, cfg, buffers, cutoffs, opts);
  canceller.join();

  runtime::RunManifest manifest;
  core::SweepRunOptions resume_opts;
  resume_opts.checkpoint_path = path;
  resume_opts.resume = true;
  resume_opts.manifest = &manifest;
  const auto resumed = core::loss_vs_buffer_and_cutoff(m, cfg, buffers, cutoffs, resume_opts);
  EXPECT_EQ(csv_of(resumed), csv_of(baseline));
  EXPECT_EQ(manifest.total_cells(), 4u);
}

TEST(RuntimeSweep, ManifestJsonIsWellFormedEnough) {
  runtime::RunManifest manifest;
  manifest.set_tool("test");
  manifest.set_title("a \"quoted\" title");
  manifest.add_config("gap", "0.2");
  manifest.set_grid(1, 2);
  manifest.add_cell(0, 1, 0.25, runtime::RunManifest::CellSource::kComputed);
  manifest.add_cell(0, 0, 0.5, runtime::RunManifest::CellSource::kCache);
  manifest.add_issue("cell went sideways");
  const std::string json = manifest.to_json();
  EXPECT_NE(json.find("\"a \\\"quoted\\\" title\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\": 1"), std::string::npos);
  // Cells are sorted by (row, col) regardless of insertion order.
  EXPECT_LT(json.find("\"col\": 0"), json.find("\"col\": 1"));
  const std::string path = ::testing::TempDir() + "lrd_manifest.json";
  EXPECT_TRUE(manifest.write_file(path));
}

}  // namespace
